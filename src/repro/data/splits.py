"""Assembly of semi-supervised splits following the paper's protocol (Table I).

A :class:`TableISpec` records the full-scale split sizes from Table I of the
paper; :func:`build_split` samples a fresh population draw from a
:class:`~repro.data.synthetic.SyntheticTabularGenerator`, applies the
experiment's knobs (contamination rate, number of labeled anomalies, which
families count as target, which non-target families appear in training),
preprocesses everything (one-hot + min-max fitted on the training side), and
returns a :class:`~repro.data.schema.DatasetSplit`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.preprocessing import TabularPreprocessor
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET, DatasetSplit, GeneratedData
from repro.data.synthetic import SyntheticTabularGenerator


def default_scale() -> float:
    """Dataset size multiplier; Table I sizes correspond to 1.0.

    Reads ``REPRO_SCALE`` from the environment (default 0.125, i.e. 1/8 of
    the paper's sizes — large enough for the statistical shapes, small
    enough for CI).
    """
    return float(os.environ.get("REPRO_SCALE", "0.125"))


@dataclass(frozen=True)
class TableISpec:
    """Full-scale split statistics for one dataset row of Table I."""

    name: str
    n_labeled: int
    n_unlabeled: int
    val_counts: Tuple[int, int, int]  # (normal, target, non-target)
    test_counts: Tuple[int, int, int]
    contamination: float = 0.05
    # Fraction of the unlabeled contamination that is *target* anomalies;
    # defaults to the test-set target/(target+non-target) ratio.
    unlabeled_target_fraction: Optional[float] = None
    # Hidden anomaly fraction inside the *evaluation* "normal" slots. Used by
    # SQB, where the paper treats unlabeled (slightly contaminated) data as
    # normal for validation/testing; those hidden anomalies keep their
    # normal (0) ground-truth label, exactly as in the paper's protocol.
    eval_normal_contamination: float = 0.0

    def target_fraction(self) -> float:
        if self.unlabeled_target_fraction is not None:
            return self.unlabeled_target_fraction
        _, n_target, n_nontarget = self.test_counts
        return n_target / max(n_target + n_nontarget, 1)


def _allocate(total: int, n_buckets: int) -> List[int]:
    """Split ``total`` as evenly as possible across ``n_buckets``."""
    if n_buckets <= 0:
        return []
    base, remainder = divmod(total, n_buckets)
    return [base + (1 if i < remainder else 0) for i in range(n_buckets)]


def _family_counts(total: int, families: Sequence[str]) -> Dict[str, int]:
    counts = _allocate(total, len(families))
    return {name: count for name, count in zip(families, counts) if count > 0}


def _redesignate(data: GeneratedData, target_families: Sequence[str]) -> GeneratedData:
    """Recompute ``kind`` so anomalies in ``target_families`` are targets."""
    is_anomaly = data.kind != KIND_NORMAL
    is_target = np.isin(data.family.astype(str), list(target_families))
    kind = np.where(is_anomaly, np.where(is_target, KIND_TARGET, KIND_NONTARGET), KIND_NORMAL)
    return GeneratedData(data.X, kind.astype(np.int64), data.family)


def build_split(
    generator: SyntheticTabularGenerator,
    spec: TableISpec,
    scale: Optional[float] = None,
    random_state: Optional[int] = None,
    contamination: Optional[float] = None,
    n_labeled: Optional[int] = None,
    target_families: Optional[Sequence[str]] = None,
    train_nontarget_families: Optional[Sequence[str]] = None,
    categorical_columns: Optional[Sequence[int]] = None,
) -> DatasetSplit:
    """Build a preprocessed semi-supervised split.

    Parameters
    ----------
    generator:
        The population to sample from.
    spec:
        Full-scale Table I statistics.
    scale:
        Size multiplier (defaults to :func:`default_scale`).
    random_state:
        Seed for this split's sampling (population structure is fixed by
        the generator's own seed).
    contamination:
        Override of the unlabeled-anomaly fraction (Fig. 4(d) / Fig. 6).
    n_labeled:
        Override of the labeled-anomaly budget (Fig. 4(c)).
    target_families:
        Which anomaly families are *target* classes (Fig. 4(b) varies this);
        defaults to the generator's designation.
    train_nontarget_families:
        Non-target families allowed in the unlabeled training pool
        (Fig. 4(a) restricts this to create unseen test-time families);
        defaults to all non-target families.
    categorical_columns:
        Raw integer-coded categorical column indices; defaults to the
        trailing columns the generator appended.
    """
    scale = default_scale() if scale is None else scale
    if scale <= 0:
        raise ValueError("scale must be positive")
    contamination = spec.contamination if contamination is None else contamination
    if not 0.0 <= contamination < 1.0:
        raise ValueError("contamination must be in [0, 1)")
    rng = np.random.default_rng(random_state)

    all_families = list(generator.family_names)
    if target_families is None:
        target_families = list(generator.target_family_names)
    else:
        target_families = list(target_families)
        unknown = set(target_families) - set(all_families)
        if unknown:
            raise ValueError(f"unknown target families: {sorted(unknown)}")
    nontarget_families = [f for f in all_families if f not in target_families]
    if not target_families:
        raise ValueError("need at least one target family")
    if train_nontarget_families is None:
        train_nontarget_families = list(nontarget_families)
    else:
        train_nontarget_families = list(train_nontarget_families)
        unknown = set(train_nontarget_families) - set(nontarget_families)
        if unknown:
            raise ValueError(f"train_nontarget_families not non-target: {sorted(unknown)}")

    def scaled(value: int, minimum: int = 1) -> int:
        return max(int(round(value * scale)), minimum)

    # --- Labeled target anomalies (D_L) -------------------------------
    # Labeled anomalies are scarce by construction (hundreds at paper
    # scale); scaling them as aggressively as the pools would leave only a
    # handful and distort the supervision regime, so their scale is floored
    # at 1/3 (the labeled fraction stays within the paper's 0.16%-0.48%).
    labeled_scale = max(scale, 1.0 / 3.0) if scale < 1.0 else scale
    n_lab = max(
        int(round((spec.n_labeled if n_labeled is None else n_labeled) * labeled_scale)), 1
    )
    labeled_counts = _family_counts(n_lab, target_families)
    labeled_parts = [generator.sample_family(name, cnt, rng) for name, cnt in labeled_counts.items()]
    labeled = _redesignate(GeneratedData.concatenate(labeled_parts), target_families)
    family_to_class = {name: i for i, name in enumerate(target_families)}
    y_labeled = np.array([family_to_class[f] for f in labeled.family], dtype=np.int64)

    # --- Unlabeled pool (D_U) ------------------------------------------
    n_unlab = scaled(spec.n_unlabeled)
    n_anomalies = int(round(contamination * n_unlab))
    n_normal_unlab = n_unlab - n_anomalies
    target_fraction = spec.target_fraction()
    n_target_unlab = int(round(n_anomalies * target_fraction))
    n_nontarget_unlab = n_anomalies - n_target_unlab
    if not train_nontarget_families:
        # All anomaly contamination is target-class if no non-target family
        # is available for training.
        n_target_unlab += n_nontarget_unlab
        n_nontarget_unlab = 0
    unlabeled_family_counts: Dict[str, int] = {}
    unlabeled_family_counts.update(_family_counts(n_target_unlab, target_families))
    if n_nontarget_unlab:
        for name, cnt in _family_counts(n_nontarget_unlab, train_nontarget_families).items():
            unlabeled_family_counts[name] = unlabeled_family_counts.get(name, 0) + cnt
    unlabeled = _redesignate(
        generator.sample_mixture(n_normal_unlab, unlabeled_family_counts, rng), target_families
    )

    # --- Validation and test sets --------------------------------------
    def build_eval(counts: Tuple[int, int, int]) -> GeneratedData:
        n_normal, n_target, n_nontarget = (scaled(c) for c in counts)
        fam_counts: Dict[str, int] = {}
        fam_counts.update(_family_counts(n_target, target_families))
        eval_nontarget = nontarget_families if nontarget_families else []
        if eval_nontarget:
            for name, cnt in _family_counts(n_nontarget, eval_nontarget).items():
                fam_counts[name] = fam_counts.get(name, 0) + cnt
        data = _redesignate(generator.sample_mixture(n_normal, fam_counts, rng), target_families)
        if spec.eval_normal_contamination > 0.0:
            # Replace part of the "normal" slot with hidden anomalies that
            # keep the normal label (SQB's unlabeled-as-normal protocol).
            normal_idx = np.flatnonzero(data.kind == KIND_NORMAL)
            n_hidden = int(round(spec.eval_normal_contamination * len(normal_idx)))
            if n_hidden > 0:
                # Hidden anomalies follow the population's target/non-target
                # mix (non-targets dominate in practice, per the paper).
                n_hidden_target = int(round(n_hidden * target_fraction))
                hidden_counts = _family_counts(n_hidden_target, target_families)
                donor_families = train_nontarget_families or nontarget_families or target_families
                for name, cnt in _family_counts(n_hidden - n_hidden_target, donor_families).items():
                    hidden_counts[name] = hidden_counts.get(name, 0) + cnt
                hidden = generator.sample_mixture(0, hidden_counts, rng) if hidden_counts else None
                if hidden is not None and len(hidden) > 0:
                    replace = rng.choice(normal_idx, size=min(len(hidden), len(normal_idx)), replace=False)
                    data.X[replace] = hidden.X[: len(replace)]
                    data.family[replace] = hidden.family[: len(replace)]
                    # kind stays KIND_NORMAL by construction.
        return data

    val = build_eval(spec.val_counts)
    test = build_eval(spec.test_counts)

    # --- Preprocess: one-hot + min-max fitted on the training side -----
    if categorical_columns is None:
        n_cat = len(generator.categorical_cardinalities)
        categorical_columns = list(range(generator.n_numeric, generator.n_numeric + n_cat))
    preprocessor = TabularPreprocessor(categorical_columns=categorical_columns)
    preprocessor.fit(np.concatenate([labeled.X, unlabeled.X], axis=0))

    return DatasetSplit(
        name=spec.name,
        X_labeled=preprocessor.transform(labeled.X),
        y_labeled=y_labeled,
        labeled_family=labeled.family,
        X_unlabeled=preprocessor.transform(unlabeled.X),
        unlabeled_kind=unlabeled.kind,
        unlabeled_family=unlabeled.family,
        X_val=preprocessor.transform(val.X),
        val_kind=val.kind,
        val_family=val.family,
        X_test=preprocessor.transform(test.X),
        test_kind=test.kind,
        test_family=test.family,
        target_families=list(target_families),
        nontarget_families=list(nontarget_families),
        metadata={
            "scale": scale,
            "contamination": contamination,
            "train_nontarget_families": list(train_nontarget_families),
            "random_state": random_state,
        },
    )
