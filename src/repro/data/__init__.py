"""Datasets: schema, synthetic generators, preprocessing, and registry.

Real UNSW-NB15 / KDDCUP99 / NSL-KDD downloads and the proprietary SQB
payment data are unavailable offline, so this package provides synthetic
analogs that mirror the statistics of Table I in the paper (dimensionality,
class inventory, target/non-target designation, split sizes, contamination).
See DESIGN.md for the substitution rationale.
"""

from repro.data.preprocessing import MinMaxScaler, OneHotEncoder, TabularPreprocessor
from repro.data.registry import DATASET_NAMES, get_generator, load_dataset
from repro.data.schema import (
    KIND_NONTARGET,
    KIND_NORMAL,
    KIND_TARGET,
    DatasetSplit,
    GeneratedData,
)
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator
from repro.data.taxonomy import (
    INJECTOR_NAMES,
    TAXONOMY_PREFIX,
    TaxonomyAugmentedGenerator,
    TaxonomyInjector,
    attach_taxonomy,
    get_injector,
    is_taxonomy_family,
    list_injectors,
    taxonomy_family_name,
)

__all__ = [
    "AnomalyFamilySpec",
    "DATASET_NAMES",
    "DatasetSplit",
    "GeneratedData",
    "INJECTOR_NAMES",
    "KIND_NONTARGET",
    "KIND_NORMAL",
    "KIND_TARGET",
    "MinMaxScaler",
    "NormalGroupSpec",
    "OneHotEncoder",
    "SyntheticTabularGenerator",
    "TAXONOMY_PREFIX",
    "TabularPreprocessor",
    "TaxonomyAugmentedGenerator",
    "TaxonomyInjector",
    "attach_taxonomy",
    "get_generator",
    "get_injector",
    "is_taxonomy_family",
    "list_injectors",
    "load_dataset",
    "taxonomy_family_name",
]
