"""Anomaly-taxonomy injectors: parameterized transforms over populations.

The synthetic dataset generators mirror Table I of the paper — each
anomaly family is a subspace shift drawn at population-construction time.
This module adds an orthogonal axis of scenario diversity: *injectors*
that turn normal rows into anomalies of a named taxonomy family, so
experiments can ask which anomaly *mechanisms* target-prioritization
survives, not just which Table I family mix.

Two strands of related work define the catalogue:

- **ADBench's four realistic-synthetic modes** (Han et al.): ``local``
  (inflated covariance around the population center), ``global``
  (uniform draws over an expanded bounding box), ``dependency``
  (marginals preserved, inter-feature dependence destroyed) and
  ``cluster`` (the whole group displaced along a fixed direction).
- **TABARD-style semantic violations** adapted from cell-level table
  auditing to numeric tabular flows: ``calculation`` (a derived column
  replaced by a wrong aggregate of its sources), ``temporal`` (an
  end-timestamp column forced before its start column), ``logical``
  (values pushed outside the observed physical range), ``normalization``
  (unit drift — a column rescaled as if recorded in different units) and
  ``consistency`` (the most-correlated column pair driven to contradict
  the relation the reference data exhibits).

Every injector is **seeded and composable**: structural choices (which
columns are "derived", which pair is "start/end") are drawn once in
:meth:`TaxonomyInjector.fit` from the rng it is given; per-row sampling in
:meth:`TaxonomyInjector.transform` uses the caller's rng stream, never
mutates its input, and is bitwise reproducible for a fixed seed.

:class:`TaxonomyAugmentedGenerator` grafts injector-backed families onto
any :class:`~repro.data.synthetic.SyntheticTabularGenerator`-shaped
population so that :func:`repro.data.splits.build_split` — and therefore
``load_dataset(..., target_families=..., train_nontarget_families=...)``
— can draw target and non-target anomalies from *different* taxonomy
families, including families held out of training entirely (the paper's
unseen-non-target configuration). Taxonomy families are addressed with a
``"tax:"`` prefix (e.g. ``"tax:local"``) so they can never collide with a
dataset's own Table I family names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from repro.data.naming import unknown_name_error
from repro.data.schema import KIND_NONTARGET, KIND_TARGET, GeneratedData

#: Prefix marking a family name as taxonomy-backed in split/registry APIs.
TAXONOMY_PREFIX = "tax:"

#: Seed offset separating injector structure from the population structure.
_STRUCTURE_SEED_OFFSET = 7077


def is_taxonomy_family(name: str) -> bool:
    """True when ``name`` addresses a taxonomy injector (``"tax:..."``)."""
    return isinstance(name, str) and name.startswith(TAXONOMY_PREFIX)


def taxonomy_family_name(injector_name: str) -> str:
    """``"local"`` -> ``"tax:local"`` (idempotent)."""
    if is_taxonomy_family(injector_name):
        return injector_name
    return TAXONOMY_PREFIX + injector_name


def injector_name(family: str) -> str:
    """``"tax:local"`` -> ``"local"`` (idempotent)."""
    if is_taxonomy_family(family):
        return family[len(TAXONOMY_PREFIX):]
    return family


# ----------------------------------------------------------------------
# Injector base + registry
# ----------------------------------------------------------------------
class TaxonomyInjector:
    """Base class: a seeded transform from normal rows to anomalous rows.

    Lifecycle::

        injector = get_injector("local", alpha=4.0)
        injector.fit(X_reference, rng)      # structural draw + column stats
        X_anom = injector.transform(X, rng) # new array; X is untouched

    ``fit`` computes the shared per-column statistics every subclass
    needs (mean, std, observed min/max of the reference sample) and then
    calls :meth:`_fit_structure` for subclass-specific structural draws.
    ``transform`` must return a **new** array of the same shape and must
    route all randomness through the passed ``rng``.
    """

    #: Registry key; subclasses override.
    name: str = "base"

    def __init__(self, **params):
        self.params = dict(params)
        self.mu_: Optional[np.ndarray] = None
        self.sigma_: Optional[np.ndarray] = None
        self.lo_: Optional[np.ndarray] = None
        self.hi_: Optional[np.ndarray] = None

    # -- fitting -------------------------------------------------------
    def fit(self, X_reference: np.ndarray, rng: np.random.Generator) -> "TaxonomyInjector":
        X = np.asarray(X_reference, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 2 or X.shape[1] < 2:
            raise ValueError("X_reference must be 2-D with >= 2 rows and >= 2 columns")
        self.mu_ = X.mean(axis=0)
        self.sigma_ = np.maximum(X.std(axis=0), 1e-9)
        self.lo_ = X.min(axis=0)
        self.hi_ = X.max(axis=0)
        self._fit_structure(X, rng)
        return self

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        """Subclass hook: draw structural parameters (columns, directions)."""

    def _check_fitted(self, X: np.ndarray) -> np.ndarray:
        if self.mu_ is None:
            raise RuntimeError(f"injector {self.name!r} is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.mu_):
            raise ValueError(
                f"expected (n, {len(self.mu_)}) rows, got array of shape {X.shape}"
            )
        return X

    @property
    def range_(self) -> np.ndarray:
        return np.maximum(self.hi_ - self.lo_, 1e-9)

    # -- transforming --------------------------------------------------
    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({params})"


_INJECTORS: Dict[str, Type[TaxonomyInjector]] = {}


def register_injector(cls: Type[TaxonomyInjector]) -> Type[TaxonomyInjector]:
    """Class decorator adding an injector to the registry by its ``name``."""
    if cls.name in _INJECTORS:
        raise ValueError(f"injector {cls.name!r} already registered")
    _INJECTORS[cls.name] = cls
    return cls


def list_injectors() -> List[str]:
    """Sorted names of every registered injector."""
    return sorted(_INJECTORS)


def get_injector(name: str, **params) -> TaxonomyInjector:
    """Instantiate a registered injector by name (``"tax:"`` prefix allowed)."""
    key = injector_name(name)
    if key not in _INJECTORS:
        raise unknown_name_error("taxonomy injector", key, list_injectors())
    return _INJECTORS[key](**params)


# ----------------------------------------------------------------------
# ADBench realistic-synthetic modes
# ----------------------------------------------------------------------
@register_injector
class LocalInjector(TaxonomyInjector):
    """Local outliers: deviations from the population center inflated.

    The ADBench mode draws anomalies from the normal GMM with the
    covariance scaled by ``alpha``; the transform equivalent amplifies
    each row's displacement from the reference mean by a per-row factor
    jittered around ``alpha`` — same location, inflated spread.
    """

    name = "local"

    def __init__(self, alpha: float = 4.0):
        super().__init__(alpha=alpha)
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 (1 keeps rows normal)")
        self.alpha = alpha

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        gain = self.alpha * rng.uniform(0.8, 1.2, size=(len(X), 1))
        return self.mu_ + gain * (X - self.mu_)


@register_injector
class GlobalInjector(TaxonomyInjector):
    """Global outliers: uniform draws over an expanded bounding box.

    ADBench samples global anomalies uniformly from a box scaled beyond
    the observed support; ``margin`` is the fraction of each column's
    range the box is extended by on both sides.
    """

    name = "global"

    def __init__(self, margin: float = 0.15):
        super().__init__(margin=margin)
        if margin < 0.0:
            raise ValueError("margin must be >= 0")
        self.margin = margin

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        pad = self.margin * self.range_
        return rng.uniform(self.lo_ - pad, self.hi_ + pad, size=X.shape)


@register_injector
class DependencyInjector(TaxonomyInjector):
    """Dependency outliers: marginals kept, inter-feature dependence cut.

    ADBench fits an independent KDE per feature; here each cell is drawn
    independently from the reference column's Gaussian moment match, so
    single rows are marginally plausible but jointly impossible (the
    low-rank correlation and behaviour-group structure is destroyed).
    """

    name = "dependency"

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        draws = self.mu_ + self.sigma_ * rng.standard_normal(size=X.shape)
        return np.clip(draws, self.lo_, self.hi_)


@register_injector
class ClusterInjector(TaxonomyInjector):
    """Cluster outliers: the whole batch displaced along a fixed direction.

    ADBench scales the GMM means by ``alpha``; the transform analog adds
    ``alpha`` reference standard deviations along a sign direction drawn
    once at fit time, producing a coherent shifted cluster.
    """

    name = "cluster"

    def __init__(self, alpha: float = 4.0):
        super().__init__(alpha=alpha)
        if alpha <= 0.0:
            raise ValueError("alpha must be > 0")
        self.alpha = alpha
        self.direction_: Optional[np.ndarray] = None

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        self.direction_ = rng.choice([-1.0, 1.0], size=X.shape[1])

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        jitter = rng.uniform(0.9, 1.1, size=(len(X), 1))
        return X + self.alpha * jitter * self.sigma_ * self.direction_


# ----------------------------------------------------------------------
# TABARD-style semantic violations, adapted to numeric tabular flows
# ----------------------------------------------------------------------
@register_injector
class CalculationInjector(TaxonomyInjector):
    """Calculation violations: derived columns replaced by wrong aggregates.

    At fit time ``n_derived`` disjoint (source, source, derived) column
    triples are drawn; the transform overwrites each derived column with
    the *sum of its sources* — a miscomputed aggregate whose value is
    inconsistent with both the column's marginal and its correlations.
    """

    name = "calculation"

    def __init__(self, n_derived: int = 2):
        super().__init__(n_derived=n_derived)
        if n_derived < 1:
            raise ValueError("n_derived must be >= 1")
        self.n_derived = n_derived
        self.triples_: Optional[np.ndarray] = None

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        D = X.shape[1]
        n = min(self.n_derived, D // 3)
        if n < 1:
            raise ValueError("calculation injector needs at least 3 columns")
        cols = rng.choice(D, size=3 * n, replace=False)
        self.triples_ = cols.reshape(n, 3)

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        out = X.copy()
        noise = rng.uniform(0.95, 1.05, size=(len(X), len(self.triples_)))
        for t, (a, b, derived) in enumerate(self.triples_):
            out[:, derived] = (X[:, a] + X[:, b]) * noise[:, t]
        return out


@register_injector
class TemporalInjector(TaxonomyInjector):
    """Temporal ordering breaks: an "end" column forced before its "start".

    ``n_pairs`` (start, end) column pairs are drawn at fit time; the
    transform rewrites each end column to precede its start by a random
    positive gap (in units of the start column's reference spread) —
    the end-before-start violation of TABARD's temporal family.
    """

    name = "temporal"

    def __init__(self, n_pairs: int = 2, max_gap: float = 2.0):
        super().__init__(n_pairs=n_pairs, max_gap=max_gap)
        if n_pairs < 1:
            raise ValueError("n_pairs must be >= 1")
        if max_gap <= 0.0:
            raise ValueError("max_gap must be > 0")
        self.n_pairs = n_pairs
        self.max_gap = max_gap
        self.pairs_: Optional[np.ndarray] = None

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        D = X.shape[1]
        n = min(self.n_pairs, D // 2)
        cols = rng.choice(D, size=2 * n, replace=False)
        self.pairs_ = cols.reshape(n, 2)

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        out = X.copy()
        gaps = rng.uniform(0.5, self.max_gap, size=(len(X), len(self.pairs_)))
        for p, (start, end) in enumerate(self.pairs_):
            out[:, end] = X[:, start] - gaps[:, p] * self.sigma_[start]
        return out


@register_injector
class LogicalInjector(TaxonomyInjector):
    """Logical/range violations: values outside the observed support.

    ``n_columns`` columns are chosen at fit time, each with a violation
    side; the transform pushes them past the reference min (or max) by a
    random multiple of the column range — impossible states such as
    negative counters or over-range rates.
    """

    name = "logical"

    def __init__(self, n_columns: int = 3, margin: float = 0.3):
        super().__init__(n_columns=n_columns, margin=margin)
        if n_columns < 1:
            raise ValueError("n_columns must be >= 1")
        if margin <= 0.0:
            raise ValueError("margin must be > 0")
        self.n_columns = n_columns
        self.margin = margin
        self.columns_: Optional[np.ndarray] = None
        self.sides_: Optional[np.ndarray] = None

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        D = X.shape[1]
        n = min(self.n_columns, D)
        self.columns_ = rng.choice(D, size=n, replace=False)
        self.sides_ = rng.choice([-1.0, 1.0], size=n)

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        out = X.copy()
        overshoot = self.margin * (1.0 + rng.uniform(0.0, 1.0, size=(len(X), len(self.columns_))))
        for c, (col, side) in enumerate(zip(self.columns_, self.sides_)):
            base = self.hi_[col] if side > 0 else self.lo_[col]
            out[:, col] = base + side * overshoot[:, c] * self.range_[col]
        return out


@register_injector
class NormalizationInjector(TaxonomyInjector):
    """Normalization drift: columns rescaled as if recorded in other units.

    Each chosen column gets a fixed unit factor (e.g. x100 or /100, drawn
    at fit time) applied to its displacement from the reference minimum —
    the mixed-units/format-drift family of TABARD, and the classic
    upstream-pipeline bug of a feed switching units silently.
    """

    name = "normalization"

    def __init__(self, n_columns: int = 2, factor: float = 100.0):
        super().__init__(n_columns=n_columns, factor=factor)
        if n_columns < 1:
            raise ValueError("n_columns must be >= 1")
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        self.n_columns = n_columns
        self.factor = factor
        self.columns_: Optional[np.ndarray] = None
        self.factors_: Optional[np.ndarray] = None

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        D = X.shape[1]
        n = min(self.n_columns, D)
        self.columns_ = rng.choice(D, size=n, replace=False)
        self.factors_ = rng.choice([self.factor, 1.0 / self.factor], size=n)

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        out = X.copy()
        jitter = rng.uniform(0.98, 1.02, size=(len(X), len(self.columns_)))
        for c, (col, factor) in enumerate(zip(self.columns_, self.factors_)):
            out[:, col] = self.lo_[col] + (X[:, col] - self.lo_[col]) * factor * jitter[:, c]
        return out


@register_injector
class ConsistencyInjector(TaxonomyInjector):
    """Consistency breaks between correlated columns.

    At fit time the ``n_pairs`` most-correlated distinct column pairs of
    the reference sample are found; the transform rewrites the second
    column of each pair to follow the *opposite* of the fitted linear
    relation (the reflected regression prediction), so each cell stays
    marginally plausible while the pair jointly contradicts the data's
    own consistency rule.
    """

    name = "consistency"

    def __init__(self, n_pairs: int = 2, gain: float = 1.5):
        super().__init__(n_pairs=n_pairs, gain=gain)
        if n_pairs < 1:
            raise ValueError("n_pairs must be >= 1")
        self.n_pairs = n_pairs
        self.gain = gain
        self.pairs_: Optional[np.ndarray] = None
        self.slopes_: Optional[np.ndarray] = None

    def _fit_structure(self, X: np.ndarray, rng: np.random.Generator) -> None:
        D = X.shape[1]
        corr = np.corrcoef(X, rowvar=False)
        corr = np.nan_to_num(corr, nan=0.0)
        np.fill_diagonal(corr, 0.0)
        strength = np.abs(corr)
        pairs: List[List[int]] = []
        slopes: List[float] = []
        used: set = set()
        order = np.argsort(-strength, axis=None)
        for flat in order:
            i, j = divmod(int(flat), D)
            if i in used or j in used or i == j:
                continue
            pairs.append([i, j])
            slopes.append(float(corr[i, j] * self.sigma_[j] / self.sigma_[i]))
            used.update((i, j))
            if len(pairs) >= self.n_pairs:
                break
        if not pairs:
            raise ValueError("consistency injector found no usable column pair")
        self.pairs_ = np.asarray(pairs, dtype=np.int64)
        self.slopes_ = np.asarray(slopes)

    def transform(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        X = self._check_fitted(X)
        out = X.copy()
        noise = rng.normal(0.0, 0.05, size=(len(X), len(self.pairs_)))
        for p, (i, j) in enumerate(self.pairs_):
            predicted = self.mu_[j] + self.slopes_[p] * (X[:, i] - self.mu_[i])
            out[:, j] = (
                self.mu_[j]
                - self.gain * (predicted - self.mu_[j])
                + noise[:, p] * self.sigma_[j]
            )
        return out


#: Sorted names of every registered injector (import-time constant).
INJECTOR_NAMES: List[str] = list_injectors()


# ----------------------------------------------------------------------
# Generator augmentation
# ----------------------------------------------------------------------
class TaxonomyAugmentedGenerator:
    """A population generator with injector-backed families grafted on.

    Duck-types the :class:`~repro.data.synthetic.SyntheticTabularGenerator`
    sampling surface consumed by :func:`repro.data.splits.build_split`
    (``family_names``, ``sample_family``, ``sample_mixture``, ...), so a
    wrapped generator drops into every split-building and experiment code
    path unchanged. Base families delegate to the wrapped generator;
    taxonomy families sample base normals and push them through the
    family's injector (numeric block only — categorical columns keep
    their normal distribution, as semantic violations in flows are
    numeric-field corruptions).

    Parameters
    ----------
    base:
        The population to augment.
    families:
        Taxonomy family names (with or without the ``"tax:"`` prefix) or
        pre-built :class:`TaxonomyInjector` instances.
    target_families:
        Which of ``families`` default to target designation (the split
        builder may still override via its own ``target_families``).
    n_reference:
        Normal rows sampled to fit the injectors' column statistics.
    random_state:
        Seed for the reference draw and structural fits; independent of
        the base population's own structural seed.
    """

    def __init__(
        self,
        base,
        families: Sequence,
        target_families: Sequence[str] = (),
        n_reference: int = 512,
        random_state: Optional[int] = None,
    ):
        if not families:
            raise ValueError("need at least one taxonomy family")
        if n_reference < 8:
            raise ValueError("n_reference must be >= 8")
        self.base = base
        targets = {taxonomy_family_name(injector_name(f)) for f in target_families}

        self._injectors: Dict[str, TaxonomyInjector] = {}
        self._is_target: Dict[str, bool] = {}
        for item in families:
            injector = item if isinstance(item, TaxonomyInjector) else get_injector(item)
            family = taxonomy_family_name(injector.name)
            if family in self._injectors:
                raise ValueError(f"duplicate taxonomy family {family!r}")
            if family in base.family_names:
                raise ValueError(f"family {family!r} collides with a base family")
            self._injectors[family] = injector
            self._is_target[family] = family in targets
        unknown_targets = targets - set(self._injectors)
        if unknown_targets:
            raise ValueError(
                f"target_families not among the attached taxonomy families: "
                f"{sorted(unknown_targets)}"
            )

        seed = None if random_state is None else random_state + _STRUCTURE_SEED_OFFSET
        fit_rng = np.random.default_rng(seed)
        reference = base.sample_normal(n_reference, fit_rng)
        numeric_reference = reference.X[:, : base.n_numeric]
        for family in sorted(self._injectors):
            self._injectors[family].fit(numeric_reference, fit_rng)

    # -- population surface -------------------------------------------
    @property
    def n_numeric(self) -> int:
        return self.base.n_numeric

    @property
    def categorical_cardinalities(self) -> List[int]:
        return self.base.categorical_cardinalities

    @property
    def n_raw_columns(self) -> int:
        return self.base.n_raw_columns

    @property
    def taxonomy_family_names(self) -> List[str]:
        return sorted(self._injectors)

    @property
    def family_names(self) -> List[str]:
        return list(self.base.family_names) + self.taxonomy_family_names

    @property
    def target_family_names(self) -> List[str]:
        extra = [f for f in self.taxonomy_family_names if self._is_target[f]]
        return list(self.base.target_family_names) + extra

    @property
    def nontarget_family_names(self) -> List[str]:
        extra = [f for f in self.taxonomy_family_names if not self._is_target[f]]
        return list(self.base.nontarget_family_names) + extra

    def injector(self, family: str) -> TaxonomyInjector:
        """The fitted injector behind one attached taxonomy family."""
        family = taxonomy_family_name(family)
        if family not in self._injectors:
            raise unknown_name_error(
                "taxonomy family", family, self.taxonomy_family_names
            )
        return self._injectors[family]

    # -- sampling ------------------------------------------------------
    def sample_normal(self, n: int, rng: np.random.Generator) -> GeneratedData:
        return self.base.sample_normal(n, rng)

    def sample_family(self, name: str, n: int, rng: np.random.Generator) -> GeneratedData:
        if name not in self._injectors:
            return self.base.sample_family(name, n, rng)
        if n <= 0:
            return GeneratedData(
                np.empty((0, self.n_raw_columns)),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=object),
            )
        base = self.base.sample_normal(n, rng)
        numeric = self._injectors[name].transform(base.X[:, : self.n_numeric], rng)
        X = np.concatenate([numeric, base.X[:, self.n_numeric:]], axis=1)
        kind_value = KIND_TARGET if self._is_target[name] else KIND_NONTARGET
        kind = np.full(n, kind_value, dtype=np.int64)
        family = np.full(n, name, dtype=object)
        return GeneratedData(X, kind, family)

    def sample_mixture(
        self,
        n_normal: int,
        family_counts: Dict[str, int],
        rng: np.random.Generator,
        shuffle: bool = True,
    ) -> GeneratedData:
        """Mixed pool of normals and (base or taxonomy) anomalies."""
        parts = [self.sample_normal(n_normal, rng)]
        for name, count in family_counts.items():
            parts.append(self.sample_family(name, count, rng))
        data = GeneratedData.concatenate(parts)
        if shuffle:
            data = data.subset(rng.permutation(len(data)))
        return data


def attach_taxonomy(
    generator,
    families: Sequence,
    target_families: Sequence[str] = (),
    n_reference: int = 512,
    random_state: Optional[int] = None,
) -> TaxonomyAugmentedGenerator:
    """Graft taxonomy families onto a population generator.

    Thin constructor wrapper kept as the public entry point (mirrors
    ``get_generator`` / ``load_dataset`` being functions, not classes).
    """
    return TaxonomyAugmentedGenerator(
        generator,
        families,
        target_families=target_families,
        n_reference=n_reference,
        random_state=random_state,
    )
