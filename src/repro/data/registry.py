"""Dataset registry: name-based access to the four paper datasets."""

from __future__ import annotations

from typing import Callable, Optional

from repro.data import kddcup99, nsl_kdd, sqb, unsw_nb15
from repro.data.schema import DatasetSplit

_MODULES = {
    "unsw_nb15": unsw_nb15,
    "kddcup99": kddcup99,
    "nsl_kdd": nsl_kdd,
    "sqb": sqb,
}

DATASET_NAMES = sorted(_MODULES)


def get_generator(name: str, random_state: Optional[int] = None):
    """Build the synthetic population generator for a dataset by name."""
    if name not in _MODULES:
        raise KeyError(f"unknown dataset {name!r}; choices: {DATASET_NAMES}")
    return _MODULES[name].make_generator(random_state)


def load_dataset(name: str, random_state: Optional[int] = None, **kwargs) -> DatasetSplit:
    """Load a preprocessed split for a dataset by name.

    ``kwargs`` forwards to :func:`repro.data.splits.build_split` — the knobs
    every robustness experiment varies (scale, contamination, n_labeled,
    target_families, train_nontarget_families).
    """
    if name not in _MODULES:
        raise KeyError(f"unknown dataset {name!r}; choices: {DATASET_NAMES}")
    return _MODULES[name].load(random_state=random_state, **kwargs)
