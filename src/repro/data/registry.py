"""Dataset registry: name-based access to the four paper datasets.

Besides plain Table I splits, the registry is where the anomaly-taxonomy
axis plugs in: any family-list knob of :func:`load_dataset`
(``target_families``, ``train_nontarget_families``, plus the additive
``taxonomy_families``) may name ``"tax:"``-prefixed taxonomy families
(see :mod:`repro.data.taxonomy`). When any appears, the dataset's
generator is wrapped in a
:class:`~repro.data.taxonomy.TaxonomyAugmentedGenerator` before split
assembly, so target and non-target anomalies can be drawn from
*different* taxonomy families — including families held out of training
entirely and seen only at test time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.data import kddcup99, nsl_kdd, sqb, unsw_nb15
from repro.data.naming import unknown_name_error
from repro.data.schema import DatasetSplit
from repro.data.splits import build_split
from repro.data.taxonomy import attach_taxonomy, is_taxonomy_family

_MODULES = {
    "unsw_nb15": unsw_nb15,
    "kddcup99": kddcup99,
    "nsl_kdd": nsl_kdd,
    "sqb": sqb,
}

DATASET_NAMES = sorted(_MODULES)

#: ``load_dataset`` knobs that may carry ``"tax:"`` family names.
_FAMILY_KNOBS = ("target_families", "train_nontarget_families", "taxonomy_families")


def _resolve(name: str):
    if name not in _MODULES:
        raise unknown_name_error("dataset", name, DATASET_NAMES)
    return _MODULES[name]


def _taxonomy_families(kwargs) -> List[str]:
    """Collect (sorted, deduplicated) taxonomy family names from the knobs."""
    names = set()
    for knob in _FAMILY_KNOBS:
        for family in kwargs.get(knob) or ():
            if is_taxonomy_family(family):
                names.add(family)
    explicit = kwargs.get("taxonomy_families")
    if explicit:
        plain = [f for f in explicit if not is_taxonomy_family(f)]
        if plain:
            raise ValueError(
                f"taxonomy_families must use the 'tax:' prefix; got {sorted(plain)}"
            )
    return sorted(names)


def get_generator(name: str, random_state: Optional[int] = None):
    """Build the synthetic population generator for a dataset by name."""
    return _resolve(name).make_generator(random_state)


def load_dataset(name: str, random_state: Optional[int] = None, **kwargs) -> DatasetSplit:
    """Load a preprocessed split for a dataset by name.

    ``kwargs`` forwards to :func:`repro.data.splits.build_split` — the knobs
    every robustness experiment varies (scale, contamination, n_labeled,
    target_families, train_nontarget_families).

    Taxonomy extension: family knobs accept ``"tax:"``-prefixed taxonomy
    families, and ``taxonomy_families`` attaches further families to the
    population without putting them in the training pool — combined with
    an explicit ``train_nontarget_families`` this creates the held-out
    configuration where a family appears only at test time::

        load_dataset(
            "unsw_nb15",
            train_nontarget_families=["Fuzzers"],       # seen non-target
            taxonomy_families=["tax:local"],            # unseen at training
        )
    """
    module = _resolve(name)
    taxonomy = _taxonomy_families(kwargs)
    kwargs = dict(kwargs)
    kwargs.pop("taxonomy_families", None)
    if not taxonomy:
        return module.load(random_state=random_state, **kwargs)
    target_taxonomy = [
        f for f in (kwargs.get("target_families") or ()) if is_taxonomy_family(f)
    ]
    generator = attach_taxonomy(
        module.make_generator(random_state),
        taxonomy,
        target_families=target_taxonomy,
        random_state=random_state,
    )
    return build_split(generator, module.SPEC, random_state=random_state, **kwargs)
