"""Preprocessing: min-max normalization and one-hot encoding.

The paper preprocesses all four datasets by one-hot encoding categorical
features and min-max mapping every feature to [0, 1] (Section IV-A).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class MinMaxScaler:
    """Map each feature to [0, 1] using train-set minima/maxima.

    Constant features map to 0. Out-of-range test values are clipped so the
    guarantee ``output ∈ [0, 1]`` holds everywhere (autoencoder inputs).
    """

    def __init__(self, clip: bool = True):
        self.clip = clip
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span > 0, span, 1.0)
        out = (X - self.data_min_) / safe_span
        out = np.where(span > 0, out, 0.0)
        if self.clip:
            out = np.clip(out, 0.0, 1.0)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        return X * (self.data_max_ - self.data_min_) + self.data_min_


class OneHotEncoder:
    """One-hot encode integer-coded categorical columns.

    Categories are learned from the fit data; unseen categories at transform
    time map to the all-zeros vector (ignore policy).
    """

    def __init__(self):
        self.categories_: Optional[List[np.ndarray]] = None

    def fit(self, X_cat: np.ndarray) -> "OneHotEncoder":
        X_cat = np.asarray(X_cat)
        if X_cat.ndim != 2:
            raise ValueError("X_cat must be 2-dimensional")
        self.categories_ = [np.unique(X_cat[:, j]) for j in range(X_cat.shape[1])]
        return self

    @property
    def n_output_features(self) -> int:
        if self.categories_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        return int(sum(len(c) for c in self.categories_))

    def transform(self, X_cat: np.ndarray) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        X_cat = np.asarray(X_cat)
        if X_cat.shape[1] != len(self.categories_):
            raise ValueError("column count differs from fit data")
        blocks = []
        for j, cats in enumerate(self.categories_):
            block = np.zeros((len(X_cat), len(cats)))
            # searchsorted + equality check implements the "ignore unseen" policy.
            pos = np.searchsorted(cats, X_cat[:, j])
            pos = np.clip(pos, 0, len(cats) - 1)
            hit = cats[pos] == X_cat[:, j]
            block[np.arange(len(X_cat))[hit], pos[hit]] = 1.0
            blocks.append(block)
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, X_cat: np.ndarray) -> np.ndarray:
        return self.fit(X_cat).transform(X_cat)


class TabularPreprocessor:
    """One-hot encode categorical columns, then min-max scale everything.

    Parameters
    ----------
    categorical_columns:
        Indices of integer-coded categorical columns in the raw matrix.
        The remaining columns are treated as numeric.
    """

    def __init__(self, categorical_columns: Sequence[int] = ()):
        self.categorical_columns = sorted(categorical_columns)
        self._encoder = OneHotEncoder() if self.categorical_columns else None
        self._scaler = MinMaxScaler()
        self._numeric_columns: Optional[np.ndarray] = None

    def _split(self, X: np.ndarray):
        X = np.asarray(X)
        if self._numeric_columns is None:
            all_cols = np.arange(X.shape[1])
            self._numeric_columns = np.setdiff1d(all_cols, self.categorical_columns)
        return X[:, self._numeric_columns].astype(np.float64), X[:, self.categorical_columns]

    def fit(self, X: np.ndarray) -> "TabularPreprocessor":
        numeric, categorical = self._split(X)
        if self._encoder is not None:
            encoded = self._encoder.fit_transform(categorical)
            combined = np.concatenate([numeric, encoded], axis=1)
        else:
            combined = numeric
        self._scaler.fit(combined)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        numeric, categorical = self._split(X)
        if self._encoder is not None:
            encoded = self._encoder.transform(categorical)
            combined = np.concatenate([numeric, encoded], axis=1)
        else:
            combined = numeric
        return self._scaler.transform(combined)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
