"""Synthetic analog of the SQB merchant-transaction dataset.

The real SQB data (daily transactions of ~6M merchants on an integrated
payment platform) is proprietary; this module reproduces the *regime* that
makes it hard, per Table I and Section IV-A of the paper:

- 182 features (176 numeric transaction statistics — amount, frequency,
  timing blocks — plus two categorical columns of cardinality 3, e.g.
  payment type), one-hot expanded;
- target families *fraud* and *gambling_recharge* (high risk), non-target
  families *click_farming* and *cash_out* (low risk), with non-target
  anomalies ~6x more frequent than targets;
- extreme imbalance: only 236 target anomalies among ~150k test rows;
- unknown contamination in the unlabeled pool, and the evaluation "normal"
  slots drawn from (slightly contaminated) unlabeled data, per the paper's
  footnote to Table I.

Target families carry high ``difficulty`` so absolute AUPRC lands in the
paper's low range (~0.01-0.3) rather than the near-1.0 of the network sets.
"""

from __future__ import annotations

from typing import Optional

from repro.data.schema import DatasetSplit
from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator

TARGET_FAMILIES = ["fraud", "gambling_recharge"]
NONTARGET_FAMILIES = ["click_farming", "cash_out"]

SPEC = TableISpec(
    name="SQB",
    n_labeled=212,
    n_unlabeled=132_028,
    val_counts=(14_671, 23, 142),
    test_counts=(148_323, 236, 1_502),
    contamination=0.04,  # the true SQB contamination is unknown; ~4% assumed
    eval_normal_contamination=0.006,
)

_POPULATION_SEED_OFFSET = 4004


def make_generator(random_state: Optional[int] = None) -> SyntheticTabularGenerator:
    """Build the fixed SQB-like population."""
    seed = None if random_state is None else random_state + _POPULATION_SEED_OFFSET
    normal_groups = [
        NormalGroupSpec("merchant_retail", weight=0.35, signature_size=28, offset_scale=1.0),
        NormalGroupSpec("merchant_food", weight=0.3, signature_size=24, offset_scale=0.9),
        NormalGroupSpec("merchant_services", weight=0.2, signature_size=22, offset_scale=1.1),
        NormalGroupSpec("merchant_online", weight=0.15, signature_size=26, offset_scale=1.2),
    ]
    # High-risk (target) merchants hide well: subtle family-specific signal
    # and modest generic anomalousness. Low-risk (non-target) merchants are
    # *more* visibly anomalous — click farming and cash-out distort volume
    # statistics — which is exactly why generic detectors drown targets in
    # non-target false positives on this dataset.
    anomaly_families = [
        AnomalyFamilySpec("fraud", is_target=True, n_affected=12, shift=3.2, scale=1.3,
                          difficulty=0.42, shared_shift=2.6, activation_rate=0.62),
        AnomalyFamilySpec("gambling_recharge", is_target=True, n_affected=14, shift=3.4, scale=1.4,
                          difficulty=0.38, shared_shift=2.8, activation_rate=0.62),
        AnomalyFamilySpec("click_farming", is_target=False, n_affected=16, shift=3.0, scale=1.5,
                          difficulty=0.25, shared_shift=4.8, activation_rate=0.65),
        AnomalyFamilySpec("cash_out", is_target=False, n_affected=14, shift=2.8, scale=1.4,
                          difficulty=0.3, shared_shift=4.4, activation_rate=0.65),
    ]
    return SyntheticTabularGenerator(
        n_numeric=176,
        categorical_cardinalities=(3, 3),
        normal_groups=normal_groups,
        anomaly_families=anomaly_families,
        correlation_rank=8,
        shared_anomaly_dims=12,
        family_dim_pool=30,
        direction_agreement=0.9,
        random_state=seed,
    )


def load(random_state: Optional[int] = None, **kwargs) -> DatasetSplit:
    """Generate a preprocessed SQB-like split."""
    generator = make_generator(random_state)
    return build_split(generator, SPEC, random_state=random_state, **kwargs)
