"""Synthetic analog of the UNSW-NB15 network-intrusion dataset.

Mirrors the paper's Table I row: 196 features (190 numeric + two
categorical columns of cardinality 3, one-hot expanded), seven anomaly
families — *Generic*, *Backdoor*, *DoS* designated target; *Fuzzers*,
*Analysis*, *Exploits*, *Reconnaissance* non-target — 300 labeled target
anomalies, 62,631 unlabeled training instances at 5% contamination, and the
paper's validation/test compositions.

Family difficulty is graded (Generic easiest, DoS hardest among targets) to
reflect the well-documented separability ordering of UNSW-NB15 attack
categories.
"""

from __future__ import annotations

from typing import Optional

from repro.data.schema import DatasetSplit
from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator

TARGET_FAMILIES = ["Generic", "Backdoor", "DoS"]
NONTARGET_FAMILIES = ["Fuzzers", "Analysis", "Exploits", "Reconnaissance"]

SPEC = TableISpec(
    name="UNSW-NB15",
    n_labeled=300,
    n_unlabeled=62_631,
    val_counts=(14_899, 334, 450),
    test_counts=(18_601, 1_666, 2_335),
    contamination=0.05,
)

_POPULATION_SEED_OFFSET = 1001


def make_generator(random_state: Optional[int] = None) -> SyntheticTabularGenerator:
    """Build the fixed UNSW-NB15-like population."""
    seed = None if random_state is None else random_state + _POPULATION_SEED_OFFSET
    normal_groups = [
        NormalGroupSpec("normal_web", weight=0.4, signature_size=24, offset_scale=1.0),
        NormalGroupSpec("normal_mail", weight=0.25, signature_size=20, offset_scale=0.9),
        NormalGroupSpec("normal_dns", weight=0.2, signature_size=16, offset_scale=1.1),
        NormalGroupSpec("normal_ftp", weight=0.15, signature_size=18, offset_scale=0.8),
    ]
    # All families share a generic "anomalousness" subspace (shared_shift),
    # which is what confuses detectors that only learn anomalous-vs-normal;
    # the family-specific subspaces (shift) are what TargAD's classifier can
    # exploit to separate targets from non-targets.
    anomaly_families = [
        AnomalyFamilySpec("Generic", is_target=True, n_affected=20, shift=5.2, scale=1.6,
                          difficulty=0.05, shared_shift=3.6, activation_rate=0.7),
        AnomalyFamilySpec("Backdoor", is_target=True, n_affected=14, shift=3.6, scale=1.4,
                          difficulty=0.25, shared_shift=3.4, activation_rate=0.62),
        AnomalyFamilySpec("DoS", is_target=True, n_affected=12, shift=3.2, scale=1.5,
                          difficulty=0.35, shared_shift=3.2, activation_rate=0.6),
        AnomalyFamilySpec("Fuzzers", is_target=False, n_affected=12, shift=2.8, scale=1.5,
                          difficulty=0.2, shared_shift=5.6, activation_rate=0.55),
        AnomalyFamilySpec("Analysis", is_target=False, n_affected=10, shift=2.4, scale=1.3,
                          difficulty=0.25, shared_shift=5.2, activation_rate=0.55),
        AnomalyFamilySpec("Exploits", is_target=False, n_affected=16, shift=3.2, scale=1.6,
                          difficulty=0.15, shared_shift=6.0, activation_rate=0.6),
        AnomalyFamilySpec("Reconnaissance", is_target=False, n_affected=12, shift=2.6, scale=1.4,
                          difficulty=0.2, shared_shift=5.4, activation_rate=0.55),
    ]
    return SyntheticTabularGenerator(
        n_numeric=190,
        categorical_cardinalities=(3, 3),
        normal_groups=normal_groups,
        anomaly_families=anomaly_families,
        correlation_rank=6,
        shared_anomaly_dims=16,
        family_dim_pool=24,
        direction_agreement=0.92,
        random_state=seed,
    )


def load(random_state: Optional[int] = None, **kwargs) -> DatasetSplit:
    """Generate a preprocessed UNSW-NB15-like split.

    ``kwargs`` forwards to :func:`repro.data.splits.build_split` (scale,
    contamination, n_labeled, target_families, train_nontarget_families).
    """
    generator = make_generator(random_state)
    return build_split(generator, SPEC, random_state=random_state, **kwargs)
