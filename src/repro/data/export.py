"""Persist and reload dataset splits.

Splits are fully determined by (dataset, seed, knobs), but exporting them
lets users pin the exact arrays used in an experiment, ship them to other
tools, or diff two configurations. A split round-trips through a single
compressed ``.npz`` with a JSON header.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.schema import DatasetSplit

_FORMAT_VERSION = 1

_ARRAY_FIELDS = [
    "X_labeled", "y_labeled",
    "X_unlabeled", "unlabeled_kind",
    "X_val", "val_kind",
    "X_test", "test_kind",
]
_FAMILY_FIELDS = ["labeled_family", "unlabeled_family", "val_family", "test_family"]


def save_split(split: DatasetSplit, path: Union[str, Path]) -> None:
    """Write a split to ``path`` as compressed ``.npz``."""
    header = {
        "format_version": _FORMAT_VERSION,
        "name": split.name,
        "target_families": split.target_families,
        "nontarget_families": split.nontarget_families,
        "metadata": split.metadata,
    }
    arrays = {"header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    for field in _ARRAY_FIELDS:
        arrays[field] = getattr(split, field)
    for field in _FAMILY_FIELDS:
        # Object arrays of strings -> fixed-width unicode for safe storage.
        arrays[field] = getattr(split, field).astype(str)
    with open(Path(path), "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_split(path: Union[str, Path]) -> DatasetSplit:
    """Reload a split written by :func:`save_split`."""
    archive = np.load(Path(path), allow_pickle=False)
    header = json.loads(bytes(archive["header"]).decode("utf-8"))
    if header["format_version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported split format version {header['format_version']}")
    kwargs = {field: archive[field] for field in _ARRAY_FIELDS}
    for field in _FAMILY_FIELDS:
        kwargs[field] = archive[field].astype(object)
    return DatasetSplit(
        name=header["name"],
        target_families=list(header["target_families"]),
        nontarget_families=list(header["nontarget_families"]),
        metadata=dict(header["metadata"]),
        **kwargs,
    )
