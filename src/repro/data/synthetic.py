"""Synthetic tabular anomaly-data generator.

This engine is the offline substitute for the paper's datasets. It produces
exactly the latent structure the TargAD problem statement assumes:

- **Multi-pattern normals** — a mixture of "behaviour groups" (the paper
  motivates k-means clustering by, e.g., low- vs high-consumption credit
  card users). Each group is a low-rank-correlated Gaussian with its own
  signature dimensions.
- **Anomaly families** — each family (e.g. *Generic*, *Fuzzers*, *fraud*)
  perturbs its own signature subspace of features with a family-specific
  shift/scale, and has a *difficulty* knob that blends it back toward the
  normal manifold. Families are declared target or non-target; the split
  builder decides which labels the model sees.
- **Categorical columns** — integer-coded columns appended after the numeric
  block, with per-group/per-family category distributions, exercising the
  one-hot preprocessing path used by the paper.

Structural parameters (group means, family signatures, ...) are drawn once
from ``random_state`` at construction; sampling uses an independent stream,
so train/validation/test splits are i.i.d. draws from one fixed population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET, GeneratedData


@dataclass(frozen=True)
class NormalGroupSpec:
    """One normal behaviour group.

    Parameters
    ----------
    name:
        Group label (becomes the ``family`` string, e.g. ``"normal_0"``).
    weight:
        Relative sampling frequency among normal instances.
    signature_size:
        Number of features on which this group's mean deviates from the
        shared baseline (what makes groups separable for k-means).
    offset_scale:
        Magnitude of that deviation.
    noise_scale:
        Per-feature independent noise standard deviation.
    """

    name: str
    weight: float = 1.0
    signature_size: int = 8
    offset_scale: float = 0.8
    noise_scale: float = 0.08


@dataclass(frozen=True)
class AnomalyFamilySpec:
    """One anomaly family.

    Parameters
    ----------
    name:
        Family label (e.g. ``"Generic"``).
    is_target:
        Default target/non-target designation (the split builder may
        override which families are *labeled*).
    n_affected:
        Size of the family's signature feature subspace.
    shift:
        Mean shift applied to affected features, in units of the normal
        noise scale. Larger = easier to detect.
    scale:
        Multiplicative variance inflation on affected features.
    difficulty:
        In [0, 1); fraction by which the anomalous displacement is blended
        back toward the normal pattern. Higher = harder.
    shared_shift:
        Mean shift applied on the generator's *shared anomaly subspace* —
        dimensions where **every** anomaly family deviates (generic
        "anomalousness": e.g. traffic volume in intrusion data, turnover
        irregularity in payments). Non-zero values make target and
        non-target anomalies confusable for detectors that only learn
        "anomalous vs normal", which is the paper's core phenomenon.
    activation_rate:
        Per-instance probability that each signature dimension actually
        fires. Below 1.0 the family is internally heterogeneous (each
        instance expresses a random sub-pattern), so family membership is
        fuzzy rather than a crisp subset-of-dims test — as in real attack
        categories.
    """

    name: str
    is_target: bool
    n_affected: int = 12
    shift: float = 4.0
    scale: float = 1.5
    difficulty: float = 0.0
    shared_shift: float = 0.0
    activation_rate: float = 1.0


@dataclass
class _FamilyStructure:
    """Frozen per-family draw of signature dims, directions, categoricals."""

    affected: np.ndarray
    direction: np.ndarray
    cat_dists: List[np.ndarray] = field(default_factory=list)


class SyntheticTabularGenerator:
    """Generator over a fixed synthetic population.

    Parameters
    ----------
    n_numeric:
        Number of numeric features in the raw matrix.
    categorical_cardinalities:
        Cardinality of each integer-coded categorical column (appended after
        the numeric block). One-hot expansion is the split builder's job.
    normal_groups, anomaly_families:
        Population structure.
    correlation_rank:
        Rank of the shared low-rank correlation structure among numeric
        features (0 disables it).
    shared_anomaly_dims:
        Size of the shared anomaly subspace on which every family's
        ``shared_shift`` acts (0 disables the mechanism).
    family_dim_pool:
        If set, every family's signature dims are drawn from a common pool
        of this many features instead of all of them. A pool not much
        larger than the family sizes forces signature *overlap* between
        families (as in real intrusion data, where attack categories share
        traffic statistics), capping how well any classifier can separate
        target from non-target families.
    direction_agreement:
        Probability that a family's displacement on a feature follows the
        feature's canonical anomaly direction (e.g. "error counters go
        up"). 0.5 = independent random directions (families orthogonal on
        average, easy to tell apart); values near 1 make all families push
        the same way, so scalar anomaly scorers cannot separate them.
    random_state:
        Seed for the *structural* draw. Sampling methods take their own
        ``rng`` so multiple splits share one population.
    """

    def __init__(
        self,
        n_numeric: int,
        normal_groups: Sequence[NormalGroupSpec],
        anomaly_families: Sequence[AnomalyFamilySpec],
        categorical_cardinalities: Sequence[int] = (),
        correlation_rank: int = 4,
        shared_anomaly_dims: int = 0,
        family_dim_pool: Optional[int] = None,
        direction_agreement: float = 0.5,
        random_state: Optional[int] = None,
    ):
        if n_numeric < 4:
            raise ValueError("n_numeric must be >= 4")
        if not normal_groups:
            raise ValueError("need at least one normal group")
        if not anomaly_families:
            raise ValueError("need at least one anomaly family")
        names = [f.name for f in anomaly_families]
        if len(set(names)) != len(names):
            raise ValueError("anomaly family names must be unique")

        self.n_numeric = n_numeric
        self.categorical_cardinalities = list(categorical_cardinalities)
        self.normal_groups = list(normal_groups)
        self.anomaly_families = list(anomaly_families)
        self.correlation_rank = correlation_rank
        self.shared_anomaly_dims = min(shared_anomaly_dims, n_numeric)
        self.family_dim_pool = None if family_dim_pool is None else min(family_dim_pool, n_numeric)
        if not 0.0 <= direction_agreement <= 1.0:
            raise ValueError("direction_agreement must be in [0, 1]")
        self.direction_agreement = direction_agreement
        self.random_state = random_state

        struct_rng = np.random.default_rng(random_state)
        self._draw_structure(struct_rng)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _draw_structure(self, rng: np.random.Generator) -> None:
        D = self.n_numeric
        self._base_mean = rng.uniform(0.35, 0.65, size=D)
        if self.correlation_rank > 0:
            self._factors = rng.normal(0.0, 0.03, size=(D, self.correlation_rank))
        else:
            self._factors = None

        if self.shared_anomaly_dims > 0:
            self._shared_affected = rng.choice(D, size=self.shared_anomaly_dims, replace=False)
            self._shared_direction = rng.choice([-1.0, 1.0], size=self.shared_anomaly_dims)
        else:
            self._shared_affected = np.empty(0, dtype=np.int64)
            self._shared_direction = np.empty(0)

        self._group_offsets: Dict[str, np.ndarray] = {}
        self._group_cat_dists: Dict[str, List[np.ndarray]] = {}
        for group in self.normal_groups:
            offset = np.zeros(D)
            size = min(group.signature_size, D)
            dims = rng.choice(D, size=size, replace=False)
            offset[dims] = rng.normal(0.0, group.offset_scale * group.noise_scale * 4.0, size=size)
            self._group_offsets[group.name] = offset
            self._group_cat_dists[group.name] = [
                rng.dirichlet(np.full(card, 4.0)) for card in self.categorical_cardinalities
            ]

        if self.family_dim_pool is not None:
            signature_pool = rng.choice(D, size=self.family_dim_pool, replace=False)
        else:
            signature_pool = np.arange(D)
        canonical_direction = rng.choice([-1.0, 1.0], size=D)

        self._family_structs: Dict[str, _FamilyStructure] = {}
        for family in self.anomaly_families:
            size = min(family.n_affected, len(signature_pool))
            affected = rng.choice(signature_pool, size=size, replace=False)
            agree = rng.random(size) < self.direction_agreement
            direction = canonical_direction[affected] * np.where(agree, 1.0, -1.0)
            cat_dists = [
                rng.dirichlet(np.full(card, 1.0)) for card in self.categorical_cardinalities
            ]
            self._family_structs[family.name] = _FamilyStructure(affected, direction, cat_dists)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def n_raw_columns(self) -> int:
        """Numeric columns plus integer-coded categorical columns."""
        return self.n_numeric + len(self.categorical_cardinalities)

    @property
    def family_names(self) -> List[str]:
        return [f.name for f in self.anomaly_families]

    @property
    def target_family_names(self) -> List[str]:
        return [f.name for f in self.anomaly_families if f.is_target]

    @property
    def nontarget_family_names(self) -> List[str]:
        return [f.name for f in self.anomaly_families if not f.is_target]

    def _numeric_normal(self, group: NormalGroupSpec, n: int, rng: np.random.Generator) -> np.ndarray:
        mean = self._base_mean + self._group_offsets[group.name]
        X = mean + rng.normal(0.0, group.noise_scale, size=(n, self.n_numeric))
        if self._factors is not None:
            latent = rng.normal(size=(n, self.correlation_rank))
            X = X + latent @ self._factors.T
        return X

    def _categorical(self, dists: List[np.ndarray], n: int, rng: np.random.Generator) -> np.ndarray:
        if not dists:
            return np.empty((n, 0))
        cols = [rng.choice(len(dist), size=n, p=dist) for dist in dists]
        return np.stack(cols, axis=1).astype(np.float64)

    def _pick_groups(self, n: int, rng: np.random.Generator) -> np.ndarray:
        weights = np.array([g.weight for g in self.normal_groups], dtype=np.float64)
        weights = weights / weights.sum()
        return rng.choice(len(self.normal_groups), size=n, p=weights)

    def sample_normal(self, n: int, rng: np.random.Generator) -> GeneratedData:
        """Draw ``n`` normal instances across behaviour groups."""
        if n <= 0:
            return GeneratedData(np.empty((0, self.n_raw_columns)), np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=object))
        assignments = self._pick_groups(n, rng)
        X = np.empty((n, self.n_raw_columns))
        family = np.empty(n, dtype=object)
        for gi, group in enumerate(self.normal_groups):
            mask = assignments == gi
            count = int(mask.sum())
            if count == 0:
                continue
            numeric = self._numeric_normal(group, count, rng)
            categorical = self._categorical(self._group_cat_dists[group.name], count, rng)
            X[mask] = np.concatenate([numeric, categorical], axis=1)
            family[mask] = group.name
        kind = np.full(n, KIND_NORMAL, dtype=np.int64)
        return GeneratedData(X, kind, family)

    def sample_family(self, name: str, n: int, rng: np.random.Generator) -> GeneratedData:
        """Draw ``n`` anomalies of the given family."""
        spec = next((f for f in self.anomaly_families if f.name == name), None)
        if spec is None:
            raise KeyError(f"unknown anomaly family {name!r}; choices: {self.family_names}")
        if n <= 0:
            return GeneratedData(np.empty((0, self.n_raw_columns)), np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=object))
        struct = self._family_structs[name]

        # Start from the normal mixture, then displace the signature subspace.
        base = self.sample_normal(n, rng)
        numeric = base.X[:, : self.n_numeric].copy()
        noise_scale = float(np.mean([g.noise_scale for g in self.normal_groups]))
        displacement = spec.shift * noise_scale * struct.direction
        jitter = rng.normal(1.0, 0.3, size=(n, len(struct.affected)))
        if spec.activation_rate < 1.0:
            fired = rng.random((n, len(struct.affected))) < spec.activation_rate
            jitter = jitter * fired
        numeric[:, struct.affected] += displacement * jitter
        if spec.scale > 1.0:
            extra_std = noise_scale * np.sqrt(spec.scale**2 - 1.0)
            numeric[:, struct.affected] += rng.normal(0.0, extra_std, size=(n, len(struct.affected)))
        if spec.shared_shift != 0.0 and len(self._shared_affected):
            # Generic anomalousness shared across families.
            shared_jitter = rng.normal(1.0, 0.25, size=(n, len(self._shared_affected)))
            if spec.activation_rate < 1.0:
                fired = rng.random(shared_jitter.shape) < (0.5 + spec.activation_rate / 2.0)
                shared_jitter = shared_jitter * fired
            numeric[:, self._shared_affected] += (
                spec.shared_shift * noise_scale * self._shared_direction * shared_jitter
            )
        if spec.difficulty > 0.0:
            # Blend back toward the (undisplaced) normal pattern.
            blend_dims = np.union1d(struct.affected, self._shared_affected).astype(np.int64)
            numeric[:, blend_dims] = (
                (1.0 - spec.difficulty) * numeric[:, blend_dims]
                + spec.difficulty * base.X[:, blend_dims]
            )
        categorical = self._categorical(struct.cat_dists, n, rng)
        X = np.concatenate([numeric, categorical], axis=1)
        kind_value = KIND_TARGET if spec.is_target else KIND_NONTARGET
        kind = np.full(n, kind_value, dtype=np.int64)
        family = np.full(n, name, dtype=object)
        return GeneratedData(X, kind, family)

    def sample_mixture(
        self,
        n_normal: int,
        family_counts: Dict[str, int],
        rng: np.random.Generator,
        shuffle: bool = True,
    ) -> GeneratedData:
        """Draw a mixed pool of normals and anomalies by family counts."""
        parts = [self.sample_normal(n_normal, rng)]
        for name, count in family_counts.items():
            parts.append(self.sample_family(name, count, rng))
        data = GeneratedData.concatenate(parts)
        if shuffle:
            order = rng.permutation(len(data))
            data = data.subset(order)
        return data
