"""Ingest real tabular data (CSV) into the library's split format.

The synthetic generators stand in for the paper's datasets offline; when a
user *does* have real data (e.g. the actual UNSW-NB15 CSV), this module is
the on-ramp:

1. :func:`read_csv` — parse a CSV with header into column arrays,
2. :func:`infer_schema` — detect numeric vs categorical columns,
3. :func:`assemble_split` — build a preprocessed
   :class:`~repro.data.schema.DatasetSplit` from a feature matrix plus a
   per-row *family* label (the paper's protocol: choose target families,
   sample a labeled set, hide the remaining anomalies in the unlabeled
   pool at a contamination rate, carve out validation/test).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.preprocessing import TabularPreprocessor
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET, DatasetSplit


@dataclass
class TableData:
    """A parsed CSV: raw string cells by column."""

    columns: List[str]
    cells: Dict[str, List[str]]

    def __len__(self) -> int:
        return len(self.cells[self.columns[0]]) if self.columns else 0


def read_csv(path: Union[str, Path], delimiter: str = ",") -> TableData:
    """Parse a delimited text file with a header row."""
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        columns = [name.strip() for name in header]
        cells: Dict[str, List[str]] = {name: [] for name in columns}
        for row_number, row in enumerate(reader, start=2):
            if len(row) != len(columns):
                raise ValueError(
                    f"{path}:{row_number}: expected {len(columns)} fields, got {len(row)}"
                )
            for name, value in zip(columns, row):
                cells[name].append(value.strip())
    return TableData(columns=columns, cells=cells)


def infer_schema(table: TableData, max_categorical_cardinality: int = 32) -> Dict[str, str]:
    """Classify each column as "numeric" or "categorical".

    A column is numeric when every non-empty cell parses as a float *and*
    its cardinality exceeds ``max_categorical_cardinality`` or it contains
    non-integer values; low-cardinality integer-like and any non-numeric
    column is categorical.
    """
    schema: Dict[str, str] = {}
    for name in table.columns:
        values = [v for v in table.cells[name] if v != ""]
        try:
            floats = [float(v) for v in values]
        except ValueError:
            schema[name] = "categorical"
            continue
        distinct = len(set(values))
        all_integral = all(float(v).is_integer() for v in values)
        if all_integral and distinct <= max_categorical_cardinality:
            schema[name] = "categorical"
        else:
            schema[name] = "numeric"
        del floats
    return schema


def to_matrix(
    table: TableData,
    schema: Optional[Dict[str, str]] = None,
    exclude: Sequence[str] = (),
) -> Tuple[np.ndarray, List[int], List[str]]:
    """Encode a table into a raw float matrix.

    Categorical cells become integer codes (per-column vocabulary order of
    first appearance); returns ``(matrix, categorical_column_indices,
    feature_names)`` ready for :class:`TabularPreprocessor`.
    """
    schema = schema if schema is not None else infer_schema(table)
    feature_names = [c for c in table.columns if c not in set(exclude)]
    n = len(table)
    matrix = np.empty((n, len(feature_names)))
    categorical_idx: List[int] = []
    for j, name in enumerate(feature_names):
        values = table.cells[name]
        if schema.get(name) == "categorical":
            vocabulary: Dict[str, int] = {}
            codes = np.empty(n)
            for i, value in enumerate(values):
                if value not in vocabulary:
                    vocabulary[value] = len(vocabulary)
                codes[i] = vocabulary[value]
            matrix[:, j] = codes
            categorical_idx.append(j)
        else:
            matrix[:, j] = [float(v) if v != "" else np.nan for v in values]
    # Impute missing numerics with the column median.
    for j in range(matrix.shape[1]):
        col = matrix[:, j]
        if np.isnan(col).any():
            col[np.isnan(col)] = np.nanmedian(col)
    return matrix, categorical_idx, feature_names


def assemble_split(
    X: np.ndarray,
    family: Sequence[str],
    target_families: Sequence[str],
    normal_label: str = "normal",
    n_labeled: int = 100,
    contamination: float = 0.05,
    val_fraction: float = 0.15,
    test_fraction: float = 0.25,
    categorical_columns: Sequence[int] = (),
    name: str = "custom",
    random_state: Optional[int] = None,
) -> DatasetSplit:
    """Build a semi-supervised split from labeled real data.

    Parameters
    ----------
    X:
        Raw feature matrix (categoricals as integer codes).
    family:
        Per-row class label; rows equal to ``normal_label`` are normal,
        every other value is an anomaly family.
    target_families:
        Families to treat as target anomaly classes (everything else
        anomalous is non-target).
    n_labeled:
        Labeled target anomalies (split evenly over target classes).
    contamination:
        Anomaly fraction of the unlabeled training pool.
    val_fraction, test_fraction:
        Fractions of the *normal* pool carved into validation/test; anomaly
        rows not used for training are split between them proportionally.
    """
    X = np.asarray(X, dtype=np.float64)
    family = np.asarray(family, dtype=object)
    if len(X) != len(family):
        raise ValueError("X and family length mismatch")
    target_families = list(target_families)
    present = set(family)
    missing = set(target_families) - present
    if missing:
        raise ValueError(f"target families not present in data: {sorted(missing)}")
    if normal_label not in present:
        raise ValueError(f"no rows labeled {normal_label!r}")
    rng = np.random.default_rng(random_state)

    is_normal = family == normal_label
    is_target = np.isin(family, target_families) & ~is_normal
    is_nontarget = ~is_normal & ~is_target
    kind = np.where(is_normal, KIND_NORMAL, np.where(is_target, KIND_TARGET, KIND_NONTARGET))

    def split_three(indices: np.ndarray, val_frac: float, test_frac: float):
        indices = rng.permutation(indices)
        n_val = int(round(val_frac * len(indices)))
        n_test = int(round(test_frac * len(indices)))
        return indices[n_val + n_test:], indices[:n_val], indices[n_val : n_val + n_test]

    normal_train, normal_val, normal_test = split_three(
        np.flatnonzero(is_normal), val_fraction, test_fraction
    )

    # Labeled targets: sample evenly per class.
    family_to_class = {f: i for i, f in enumerate(target_families)}
    labeled_idx: List[int] = []
    per_class = max(n_labeled // len(target_families), 1)
    for fam in target_families:
        pool = np.flatnonzero(family == fam)
        take = min(per_class, max(len(pool) - 2, 1))
        labeled_idx.extend(rng.choice(pool, size=take, replace=False).tolist())
    labeled_idx = np.asarray(labeled_idx)

    remaining_anom = np.setdiff1d(np.flatnonzero(~is_normal), labeled_idx)
    anom_train_budget = int(round(contamination * len(normal_train) / max(1 - contamination, 1e-9)))
    anom_train_budget = min(anom_train_budget, len(remaining_anom))
    anom_train = rng.choice(remaining_anom, size=anom_train_budget, replace=False)
    anom_eval = np.setdiff1d(remaining_anom, anom_train)
    anom_eval = rng.permutation(anom_eval)
    n_anom_val = int(round(len(anom_eval) * val_fraction / max(val_fraction + test_fraction, 1e-9)))
    anom_val, anom_test = anom_eval[:n_anom_val], anom_eval[n_anom_val:]

    unlabeled_idx = rng.permutation(np.concatenate([normal_train, anom_train]))
    val_idx = rng.permutation(np.concatenate([normal_val, anom_val]))
    test_idx = rng.permutation(np.concatenate([normal_test, anom_test]))

    preprocessor = TabularPreprocessor(categorical_columns=categorical_columns)
    preprocessor.fit(np.concatenate([X[labeled_idx], X[unlabeled_idx]]))

    nontarget_families = sorted(set(family[is_nontarget]))
    return DatasetSplit(
        name=name,
        X_labeled=preprocessor.transform(X[labeled_idx]),
        y_labeled=np.array([family_to_class[f] for f in family[labeled_idx]], dtype=np.int64),
        labeled_family=family[labeled_idx],
        X_unlabeled=preprocessor.transform(X[unlabeled_idx]),
        unlabeled_kind=kind[unlabeled_idx],
        unlabeled_family=family[unlabeled_idx],
        X_val=preprocessor.transform(X[val_idx]),
        val_kind=kind[val_idx],
        val_family=family[val_idx],
        X_test=preprocessor.transform(X[test_idx]),
        test_kind=kind[test_idx],
        test_family=family[test_idx],
        target_families=target_families,
        nontarget_families=list(nontarget_families),
        metadata={"source": "assemble_split", "contamination": contamination,
                  "random_state": random_state},
    )
