"""Synthetic analog of the KDDCUP99 intrusion dataset (32 retained features).

Table I row: 32 features (26 numeric + two categorical columns of
cardinality 3), target anomaly classes *R2L* and *DoS*, non-target class
*Probe*; 200 labeled targets, 58,524 unlabeled at 5% contamination.

KDDCUP99's DoS traffic is famously easy to separate (flooding signatures
saturate volume counters), while R2L is subtler — the family difficulties
encode that ordering, which is why every method's AUPRC on this analog is
high, as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.data.schema import DatasetSplit
from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator

TARGET_FAMILIES = ["R2L", "DoS"]
NONTARGET_FAMILIES = ["Probe"]

SPEC = TableISpec(
    name="KDDCUP99",
    n_labeled=200,
    n_unlabeled=58_524,
    val_counts=(13_918, 419, 188),
    test_counts=(17_380, 799, 352),
    contamination=0.05,
)

_POPULATION_SEED_OFFSET = 2002


def make_generator(random_state: Optional[int] = None) -> SyntheticTabularGenerator:
    """Build the fixed KDDCUP99-like population."""
    seed = None if random_state is None else random_state + _POPULATION_SEED_OFFSET
    normal_groups = [
        NormalGroupSpec("normal_http", weight=0.55, signature_size=8, offset_scale=1.0),
        NormalGroupSpec("normal_smtp", weight=0.3, signature_size=6, offset_scale=0.9),
        NormalGroupSpec("normal_other", weight=0.15, signature_size=6, offset_scale=1.1),
    ]
    anomaly_families = [
        AnomalyFamilySpec("R2L", is_target=True, n_affected=6, shift=3.6, scale=1.4,
                          difficulty=0.15, shared_shift=3.0, activation_rate=0.75),
        AnomalyFamilySpec("DoS", is_target=True, n_affected=9, shift=5.5, scale=1.8,
                          difficulty=0.0, shared_shift=3.6, activation_rate=0.8),
        AnomalyFamilySpec("Probe", is_target=False, n_affected=6, shift=3.4, scale=1.5,
                          difficulty=0.1, shared_shift=5.0, activation_rate=0.75),
    ]
    return SyntheticTabularGenerator(
        n_numeric=26,
        categorical_cardinalities=(3, 3),
        normal_groups=normal_groups,
        anomaly_families=anomaly_families,
        correlation_rank=3,
        shared_anomaly_dims=5,
        family_dim_pool=14,
        direction_agreement=0.88,
        random_state=seed,
    )


def load(random_state: Optional[int] = None, **kwargs) -> DatasetSplit:
    """Generate a preprocessed KDDCUP99-like split."""
    generator = make_generator(random_state)
    return build_split(generator, SPEC, random_state=random_state, **kwargs)
