"""Data containers shared by generators, split builders, and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

# Instance kinds (ground truth used for evaluation and diagnostics).
KIND_NORMAL = 0
KIND_TARGET = 1
KIND_NONTARGET = 2

KIND_NAMES = {KIND_NORMAL: "normal", KIND_TARGET: "target", KIND_NONTARGET: "non-target"}


@dataclass
class GeneratedData:
    """A pool of generated instances with full ground truth.

    Attributes
    ----------
    X:
        ``(n, D)`` feature matrix (already numeric; categoricals one-hot).
    kind:
        Per-row kind: 0 normal, 1 target anomaly, 2 non-target anomaly.
    family:
        Per-row family name ("normal_0", "Generic", "Fuzzers", ...).
    """

    X: np.ndarray
    kind: np.ndarray
    family: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.X) == len(self.kind) == len(self.family)):
            raise ValueError("X, kind, family must have equal length")

    def __len__(self) -> int:
        return len(self.X)

    def subset(self, mask: np.ndarray) -> "GeneratedData":
        """Boolean/index subset preserving all columns."""
        return GeneratedData(self.X[mask], self.kind[mask], self.family[mask])

    @staticmethod
    def concatenate(parts: List["GeneratedData"]) -> "GeneratedData":
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            raise ValueError("nothing to concatenate")
        return GeneratedData(
            np.concatenate([p.X for p in parts]),
            np.concatenate([p.kind for p in parts]),
            np.concatenate([p.family for p in parts]),
        )


@dataclass
class DatasetSplit:
    """A fully-assembled semi-supervised split per the paper's protocol.

    The training side follows Section III-A: ``D_L`` (labeled target
    anomalies with class labels ``1..m`` stored 0-based in ``y_labeled``)
    and ``D_U`` (unlabeled mix of normals + hidden target/non-target
    anomalies). The unlabeled ground truth (``unlabeled_kind`` /
    ``unlabeled_family``) is carried along for diagnostics only — models
    must not read it during fit.
    """

    name: str
    X_labeled: np.ndarray
    y_labeled: np.ndarray  # 0-based target-class index, in [0, m)
    labeled_family: np.ndarray

    X_unlabeled: np.ndarray
    unlabeled_kind: np.ndarray
    unlabeled_family: np.ndarray

    X_val: np.ndarray
    val_kind: np.ndarray
    val_family: np.ndarray

    X_test: np.ndarray
    test_kind: np.ndarray
    test_family: np.ndarray

    target_families: List[str] = field(default_factory=list)
    nontarget_families: List[str] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    @property
    def n_target_classes(self) -> int:
        """``m`` — number of labeled target anomaly classes."""
        return len(self.target_families)

    @property
    def n_features(self) -> int:
        return self.X_unlabeled.shape[1]

    def binary_labels(self, kind: np.ndarray) -> np.ndarray:
        """Paper's detection labels: +1 for target anomalies, 0 otherwise.

        (The paper states -1 for normal/non-target; we use 0/1 because every
        metric here consumes 0/1 indicators.)
        """
        return (np.asarray(kind) == KIND_TARGET).astype(np.int64)

    @property
    def y_test_binary(self) -> np.ndarray:
        return self.binary_labels(self.test_kind)

    @property
    def y_val_binary(self) -> np.ndarray:
        return self.binary_labels(self.val_kind)

    def summary(self) -> Dict:
        """Table I style statistics for this split."""
        def _counts(kind: np.ndarray) -> Dict[str, int]:
            kind = np.asarray(kind)
            return {
                "normal": int((kind == KIND_NORMAL).sum()),
                "target": int((kind == KIND_TARGET).sum()),
                "non-target": int((kind == KIND_NONTARGET).sum()),
            }

        return {
            "name": self.name,
            "D": int(self.n_features),
            "labeled_target": int(len(self.X_labeled)),
            "unlabeled": int(len(self.X_unlabeled)),
            "unlabeled_composition": _counts(self.unlabeled_kind),
            "validation": _counts(self.val_kind),
            "testing": _counts(self.test_kind),
            "m": self.n_target_classes,
        }
