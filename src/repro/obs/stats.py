"""Summary statistics for timer samples.

Timers accumulate wall-clock samples (seconds). :class:`TimerStats` is the
read-side summary: count/total are exact running aggregates, while the
order statistics (p50/p95/p99) come from a bounded window of the most
recent samples so memory stays constant under production traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TimerStats:
    """Immutable summary of one timer's samples (all values in seconds)."""

    name: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(
        cls,
        name: str,
        samples: Sequence[float],
        count: int | None = None,
        total: float | None = None,
        max_value: float | None = None,
    ) -> "TimerStats":
        """Build a summary from a sample window.

        ``count``/``total``/``max_value`` override the window aggregates
        with exact running values when the window was truncated.
        """
        values = np.asarray(list(samples), dtype=np.float64)
        if len(values) == 0:
            return cls(name=name, count=count or 0, total=total or 0.0,
                       mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                       max=max_value or 0.0)
        n = count if count is not None else len(values)
        tot = total if total is not None else float(values.sum())
        return cls(
            name=name,
            count=n,
            total=tot,
            mean=tot / max(n, 1),
            p50=float(np.percentile(values, 50)),
            p95=float(np.percentile(values, 95)),
            p99=float(np.percentile(values, 99)),
            max=max_value if max_value is not None else float(values.max()),
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (seconds, ``_s`` suffix for clarity)."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "max_s": self.max,
        }

    def format_line(self) -> str:
        """One-line human summary, e.g. for the dashboard."""
        return (f"n={self.count:<5d} total={self.total * 1e3:9.1f}ms "
                f"p50={self.p50 * 1e3:8.2f}ms p95={self.p95 * 1e3:8.2f}ms "
                f"p99={self.p99 * 1e3:8.2f}ms max={self.max * 1e3:8.2f}ms")
