"""Timing helpers: context manager, method decorator, and phase timer.

Three entry points, all recording into a :class:`TelemetryRegistry`:

- ``record_timing(telemetry, "name")`` — explicit context manager;
- ``@timed("name")`` — decorator for methods of objects that carry a
  ``telemetry`` attribute (TargAD, ScoringPipeline, CandidateSelector);
- :class:`PhaseTimer` — ordered named phases for coarse-grained reports
  (benchmark time axes, CLI profiling).
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.registry import NULL_TELEMETRY, ensure_telemetry


def record_timing(telemetry, name: str):
    """``with record_timing(reg, "select.total"): ...``; ``None`` is a no-op."""
    return ensure_telemetry(telemetry).timer(name)


def timed(name: str, attr: str = "telemetry") -> Callable:
    """Decorate a method so each call records one timer sample.

    The bound instance's ``attr`` attribute (default ``telemetry``) supplies
    the registry; a missing attribute or ``None`` falls back to the shared
    null telemetry, keeping undecorated construction paths working.
    """

    def decorator(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(self, *args: Any, **kwargs: Any):
            telemetry = getattr(self, attr, None) or NULL_TELEMETRY
            with telemetry.timer(name):
                return func(self, *args, **kwargs)

        return wrapper

    return decorator


class PhaseTimer:
    """Collect named, ordered wall-clock phases.

    Usage::

        timer = PhaseTimer()
        with timer.phase("load_dataset"):
            ...
        with timer.phase("fit"):
            ...
        timer.as_dict()   # {"load_dataset": 1.2, "fit": 30.5}

    Re-entering a phase name accumulates into the same bucket. When a
    registry is attached, each phase also lands as a ``phase.<name>`` timer
    sample there.
    """

    def __init__(self, telemetry=None):
        self.telemetry = ensure_telemetry(telemetry)
        self._phases: List[Tuple[str, float]] = []
        self._totals: Dict[str, float] = {}

    class _Phase:
        __slots__ = ("_timer", "_name", "_start")

        def __init__(self, timer: "PhaseTimer", name: str):
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "PhaseTimer._Phase":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: Any) -> None:
            elapsed = time.perf_counter() - self._start
            self._timer._record(self._name, elapsed)

    def phase(self, name: str) -> "PhaseTimer._Phase":
        return PhaseTimer._Phase(self, name)

    def _record(self, name: str, seconds: float) -> None:
        self._phases.append((name, seconds))
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self.telemetry.observe(f"phase.{name}", seconds)

    def as_dict(self) -> Dict[str, float]:
        """Accumulated seconds per phase, in first-seen order."""
        return dict(self._totals)

    @property
    def total(self) -> float:
        return sum(self._totals.values())

    def summary(self) -> str:
        parts = [f"{name}={seconds:.3f}s" for name, seconds in self._totals.items()]
        return " ".join(parts) if parts else "(no phases)"
