"""Process-local telemetry registry.

One :class:`TelemetryRegistry` instance collects everything a run emits:

- **counters** — monotonically-increasing floats (``serve.rows``);
- **gauges** — last-write-wins floats (``train.rows_per_sec``);
- **timers** — wall-clock histograms with p50/p95/max (``serve.process``);
- **events** — a bounded structured log (``train.epoch`` with its loss).

The registry is thread-safe (a single lock guards every mutation) and
cheap: recording a timer sample is an append to a bounded deque.

:class:`NullTelemetry` is the disabled twin: every method is a no-op and
``timer()`` returns a shared, allocation-free context manager, so code can
be instrumented unconditionally — ``telemetry=None`` call sites pay only
an attribute lookup and an empty call per record.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.events import Event, EventLog
from repro.obs.stats import TimerStats


class _NullTimer:
    """Shared no-op context manager returned by :meth:`NullTelemetry.timer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullTelemetry:
    """Disabled telemetry: same surface as the registry, all no-ops.

    A single module-level instance (:data:`NULL_TELEMETRY`) is shared by
    every uninstrumented model/pipeline, so "telemetry off" costs neither
    allocation nor branching at the call sites.
    """

    enabled = False

    def increment(self, name: str, value: float = 1.0) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def record_event(self, name: str, **fields: Any) -> None:
        return None

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def reset(self) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


def ensure_telemetry(telemetry: Optional["TelemetryRegistry"]):
    """Map ``None`` to the shared :data:`NULL_TELEMETRY` instance."""
    return NULL_TELEMETRY if telemetry is None else telemetry


class _Timer:
    """Context manager recording one wall-clock sample into the registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "TelemetryRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class _TimerState:
    """Running aggregates plus a bounded sample window for one timer."""

    __slots__ = ("count", "total", "max", "samples")

    def __init__(self, window: int):
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.samples: Deque[float] = deque(maxlen=window)

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        self.samples.append(seconds)


class TelemetryRegistry:
    """Enabled telemetry sink for one process/run.

    Parameters
    ----------
    timer_window:
        Samples retained per timer for the p50/p95 order statistics;
        count/total/max stay exact regardless.
    event_capacity:
        Ring-buffer size of the structured event log.
    """

    enabled = True

    def __init__(self, timer_window: int = 4096, event_capacity: int = 1024):
        self._lock = threading.Lock()
        self._timer_window = timer_window
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, _TimerState] = {}
        self.events = EventLog(capacity=event_capacity)

    # -- write side ----------------------------------------------------
    def increment(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            state = self._timers.get(name)
            if state is None:
                state = self._timers[name] = _TimerState(self._timer_window)
            state.add(float(seconds))

    def record_event(self, name: str, **fields: Any) -> Event:
        with self._lock:
            return self.events.append(name, **fields)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("serve.process"): ...`` records one sample."""
        return _Timer(self, name)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self.events.clear()

    # -- read side -----------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def counter(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def timer_names(self) -> List[str]:
        with self._lock:
            return sorted(self._timers)

    def timer_stats(self, name: str) -> TimerStats:
        with self._lock:
            state = self._timers.get(name)
            if state is None:
                return TimerStats.from_samples(name, [])
            return TimerStats.from_samples(
                name, list(state.samples), count=state.count,
                total=state.total, max_value=state.max,
            )

    def all_timer_stats(self) -> List[TimerStats]:
        return [self.timer_stats(name) for name in self.timer_names()]
