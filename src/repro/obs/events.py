"""Structured event log.

Events are discrete, timestamp-ordered facts ("epoch 7 finished with loss
0.42", "drift detected on 3 features") as opposed to the continuous
counters/gauges/timers. The log is a bounded ring buffer so long-running
services cannot grow it without bound.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List


@dataclass(frozen=True)
class Event:
    """One structured event: a monotonically-increasing sequence number,
    a dotted name, and arbitrary JSON-ready payload fields."""

    seq: int
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "name": self.name, **self.fields}

    def format_line(self) -> str:
        payload = " ".join(f"{k}={_fmt(v)}" for k, v in self.fields.items())
        return f"#{self.seq:<5d} {self.name:<28s} {payload}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class EventLog:
    """Bounded, append-only event buffer (oldest entries are evicted)."""

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._next_seq = 0
        self._counts: Counter = Counter()

    def append(self, name: str, **fields: Any) -> Event:
        event = Event(seq=self._next_seq, name=name, fields=dict(fields))
        self._next_seq += 1
        self._events.append(event)
        self._counts[name] += 1
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(list(self._events))

    @property
    def total_recorded(self) -> int:
        """Number of events ever appended (including evicted ones)."""
        return self._next_seq

    def tail(self, n: int = 10) -> List[Event]:
        """The most recent ``n`` events, oldest first."""
        events = list(self._events)
        return events[-n:] if n > 0 else []

    def by_name(self, name: str) -> List[Event]:
        """All retained events with the given name, oldest first."""
        return [e for e in self._events if e.name == name]

    def counts(self) -> Dict[str, int]:
        """Lifetime event counts per name (survives ring eviction)."""
        return dict(self._counts)

    def series(self, name: str, field_name: str) -> List[float]:
        """Numeric trajectory of one field across retained ``name`` events.

        Non-numeric or missing values are skipped; useful for sparklines
        (per-epoch loss, per-batch alert counts, ...).
        """
        out: List[float] = []
        for event in self._events:
            if event.name != name:
                continue
            value = event.fields.get(field_name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out.append(float(value))
        return out

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
        self._next_seq = 0
