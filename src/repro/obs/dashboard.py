"""ASCII telemetry dashboard.

Renders one :class:`~repro.obs.registry.TelemetryRegistry` into a terminal
report, reusing the :mod:`repro.viz.ascii` conventions (horizontal bars
with value annotations, sparklines for trajectories). All functions return
strings — callers print.
"""

from __future__ import annotations

from typing import List

from repro.obs.registry import TelemetryRegistry
from repro.viz.ascii import bar_chart, sparkline

_RULE = "─" * 64

# Event series whose numeric trajectory is worth a sparkline, in display
# order: (event name, field, label).
_KNOWN_SERIES = (
    ("train.epoch", "loss", "training loss / epoch"),
    ("train.epoch", "weight_mean", "mean candidate weight / epoch"),
    ("train.epoch", "rows_per_sec", "training throughput (rows/s) / epoch"),
    ("serve.batch", "n_alerts", "alerts / batch"),
    ("serve.batch", "latency_ms", "process latency (ms) / batch"),
    ("serve.batch", "n_quarantined", "quarantined rows / batch"),
    ("serve.batch", "n_shards", "shards / batch"),
    ("serve.drift", "max_ks", "drift max KS / event"),
    ("lifecycle.cycle", "auprc_ratio", "refit AUPRC ratio / cycle"),
)


def _section(title: str) -> List[str]:
    return [_RULE, f" {title}", _RULE]


def render_dashboard(
    registry: TelemetryRegistry,
    title: str = "telemetry dashboard",
    max_events: int = 12,
) -> str:
    """Render the full registry: timers, counters, gauges, trends, events."""
    lines: List[str] = [f"═══ {title} ═══"]

    stats = registry.all_timer_stats()
    if stats:
        lines += _section("timers (wall clock)")
        totals = bar_chart(
            [s.name for s in stats], [s.total for s in stats],
            width=30, title="total seconds by timer:",
        )
        lines += totals.splitlines()
        lines.append("")
        pad = max(len(s.name) for s in stats)
        for s in stats:
            lines.append(f"{s.name.rjust(pad)}  {s.format_line()}")

    counters = registry.counters
    if counters:
        lines += _section("counters")
        names = sorted(counters)
        chart = bar_chart(names, [counters[n] for n in names], width=30)
        lines += chart.splitlines()

    gauges = registry.gauges
    if gauges:
        lines += _section("gauges")
        pad = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"{name.rjust(pad)}  {gauges[name]:.6g}")

    trend_lines = _render_trends(registry)
    if trend_lines:
        lines += _section("trends")
        lines += trend_lines

    if len(registry.events):
        lines += _section(f"events (last {max_events} of {registry.events.total_recorded})")
        for event in registry.events.tail(max_events):
            lines.append(" " + event.format_line())

    if len(lines) == 1:
        lines.append("(registry is empty)")
    return "\n".join(lines)


def _render_trends(registry: TelemetryRegistry) -> List[str]:
    lines: List[str] = []
    for event_name, field_name, label in _KNOWN_SERIES:
        series = registry.events.series(event_name, field_name)
        if len(series) >= 2:
            lines.append(f" {label}:")
            lines.append(f"   {sparkline(series)}  "
                         f"[{series[0]:.4g} → {series[-1]:.4g}]")
    return lines


def render_summary(registry: TelemetryRegistry) -> str:
    """Compact one-paragraph summary (for logs rather than terminals)."""
    stats = registry.all_timer_stats()
    timer_part = ", ".join(f"{s.name}:{s.total:.3f}s" for s in stats)
    counter_part = ", ".join(
        f"{name}={value:g}" for name, value in sorted(registry.counters.items())
    )
    return (f"timers[{timer_part or 'none'}] counters[{counter_part or 'none'}] "
            f"events={registry.events.total_recorded}")
