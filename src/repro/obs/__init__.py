"""Observability: telemetry registry, timing helpers, dashboard, export.

The training (``TargAD.fit``), candidate-selection, and serving
(``ScoringPipeline``) layers all accept a ``telemetry=`` argument; pass a
:class:`TelemetryRegistry` to collect timings, counters, gauges, and
structured events, or leave it ``None`` for a zero-overhead no-op.

Quick start::

    from repro.obs import TelemetryRegistry, render_dashboard

    telemetry = TelemetryRegistry()
    model = TargAD(TargADConfig(k=3, random_state=0), telemetry=telemetry)
    model.fit(X_unlabeled, X_labeled, y_labeled)
    pipe = ScoringPipeline(model, telemetry=telemetry).calibrate(X_val, y_val)
    pipe.process(X_live)
    print(render_dashboard(telemetry))
"""

from repro.obs.dashboard import render_dashboard, render_summary
from repro.obs.events import Event, EventLog
from repro.obs.export import dump_json, snapshot_to_dict
from repro.obs.registry import (
    NULL_TELEMETRY,
    NullTelemetry,
    TelemetryRegistry,
    ensure_telemetry,
)
from repro.obs.stats import TimerStats
from repro.obs.timing import PhaseTimer, record_timing, timed

__all__ = [
    "Event",
    "EventLog",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PhaseTimer",
    "TelemetryRegistry",
    "TimerStats",
    "dump_json",
    "ensure_telemetry",
    "record_timing",
    "render_dashboard",
    "render_summary",
    "snapshot_to_dict",
    "timed",
]
