"""Serialize telemetry snapshots to JSON-ready dicts and files.

Used by the ``repro telemetry`` CLI (``--json``) and the benchmark
harness, which writes per-phase timing files next to its result output so
``BENCH_*`` trajectories gain a time axis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.registry import TelemetryRegistry

SNAPSHOT_FORMAT_VERSION = 1


def snapshot_to_dict(
    registry: TelemetryRegistry,
    max_events: Optional[int] = None,
) -> Dict[str, Any]:
    """Full JSON-ready snapshot: counters, gauges, timer stats, events."""
    events = list(registry.events)
    if max_events is not None:
        events = events[-max_events:]
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "counters": registry.counters,
        "gauges": registry.gauges,
        "timers": {s.name: s.to_dict() for s in registry.all_timer_stats()},
        "event_counts": registry.events.counts(),
        "events": [event.to_dict() for event in events],
    }


def dump_json(
    registry: TelemetryRegistry,
    path: Union[str, Path],
    max_events: Optional[int] = None,
    **extra: Any,
) -> Path:
    """Write a snapshot to ``path``; ``extra`` keys merge into the payload."""
    path = Path(path)
    payload = snapshot_to_dict(registry, max_events=max_events)
    payload.update(extra)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
