"""Confusion-matrix based metrics: precision, recall, F1, report averaging.

Used by the Table IV experiment (tri-class identification of normal /
target / non-target instances) with macro and weighted averaging, matching
the paper's reporting.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: Optional[Sequence] = None,
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class i predicted as j."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: Optional[Sequence] = None,
) -> Dict:
    """Per-class precision/recall/F1 plus support.

    Returns ``{label: {"precision": ..., "recall": ..., "f1": ..., "support": ...}}``.
    Undefined ratios (zero denominators) are reported as 0.0, matching
    sklearn's ``zero_division=0``.
    """
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    matrix = confusion_matrix(y_true, y_pred, labels=labels)
    result: Dict = {}
    for i, label in enumerate(labels):
        tp = matrix[i, i]
        predicted = matrix[:, i].sum()
        actual = matrix[i, :].sum()
        precision = tp / predicted if predicted > 0 else 0.0
        recall = tp / actual if actual > 0 else 0.0
        denom = precision + recall
        f1 = 2 * precision * recall / denom if denom > 0 else 0.0
        result[label] = {
            "precision": float(precision),
            "recall": float(recall),
            "f1": float(f1),
            "support": int(actual),
        }
    return result


def classification_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: Optional[Sequence] = None,
) -> Dict:
    """Per-class metrics plus ``macro avg`` and ``weighted avg`` rows.

    Mirrors the layout of Table IV in the paper: one row per class, then
    macro (unweighted mean over classes) and weighted (support-weighted
    mean) averages of precision, recall and F1.
    """
    per_class = precision_recall_f1(y_true, y_pred, labels=labels)
    supports = np.array([row["support"] for row in per_class.values()], dtype=np.float64)
    total = supports.sum()
    report = dict(per_class)
    for avg_name, weights in (
        ("macro avg", np.ones_like(supports) / len(supports)),
        ("weighted avg", supports / total if total > 0 else np.ones_like(supports) / len(supports)),
    ):
        report[avg_name] = {
            metric: float(
                sum(w * row[metric] for w, row in zip(weights, per_class.values()))
            )
            for metric in ("precision", "recall", "f1")
        }
        report[avg_name]["support"] = int(total)
    return report
