"""Bootstrap confidence intervals for ranking metrics.

The paper reports mean ± std over 5 independent runs; for a *single* test
set, percentile-bootstrap intervals quantify the evaluation uncertainty of
AUPRC/AUROC (resampling test instances with replacement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.metrics.ranking import auprc, auroc


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate plus a percentile confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.estimate:.3f} [{self.lower:.3f}, {self.upper:.3f}] ({pct}% CI)"


def bootstrap_metric(
    metric: Callable[[np.ndarray, np.ndarray], float],
    y_true: np.ndarray,
    scores: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    random_state: Optional[int] = None,
) -> BootstrapResult:
    """Percentile bootstrap of any ``metric(y_true, scores)``.

    Resamples with both classes guaranteed present (degenerate resamples
    are redrawn; after 10 failed redraws the resample is skipped).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    rng = np.random.default_rng(random_state)
    n = len(y_true)

    estimate = metric(y_true, scores)
    values = []
    for _ in range(n_resamples):
        for _attempt in range(10):
            idx = rng.integers(0, n, size=n)
            resampled = y_true[idx]
            if 0 < resampled.sum() < n:
                values.append(metric(resampled, scores[idx]))
                break
    values = np.asarray(values)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(estimate),
        lower=float(np.quantile(values, alpha)),
        upper=float(np.quantile(values, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=len(values),
    )


def bootstrap_auprc(y_true, scores, **kwargs) -> BootstrapResult:
    """Bootstrap CI for AUPRC."""
    return bootstrap_metric(auprc, y_true, scores, **kwargs)


def bootstrap_auroc(y_true, scores, **kwargs) -> BootstrapResult:
    """Bootstrap CI for AUROC."""
    return bootstrap_metric(auroc, y_true, scores, **kwargs)
