"""Evaluation metrics: ranking (AUROC/AUPRC) and classification (PRF)."""

from repro.metrics.classification import (
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from repro.metrics.ranking import (
    auprc,
    auroc,
    average_precision,
    precision_at_k,
    precision_recall_curve,
    roc_curve,
)

__all__ = [
    "auprc",
    "auroc",
    "average_precision",
    "classification_report",
    "confusion_matrix",
    "precision_at_k",
    "precision_recall_curve",
    "precision_recall_f1",
    "roc_curve",
]
