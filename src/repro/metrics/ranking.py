"""Ranking metrics: ROC / precision-recall curves, AUROC, AUPRC.

Definitions match the standard ones used by the paper (scikit-learn
conventions): AUROC via the trapezoid rule over the ROC curve (equivalently
the Mann-Whitney U statistic with tie correction), and AUPRC as *average
precision* — the step-wise sum ``Σ (R_i - R_{i-1}) · P_i`` — which is what
``sklearn.metrics.average_precision_score`` computes and what anomaly
detection papers report.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _validate(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    if len(y_true) == 0:
        raise ValueError("empty inputs")
    unique = np.unique(y_true)
    if not np.all(np.isin(unique, [0, 1])):
        raise ValueError("y_true must be binary (0/1)")
    return y_true.astype(np.int64), scores


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points ``(fpr, tpr, thresholds)`` at every distinct score.

    Thresholds are in decreasing order; curve starts at (0, 0).
    """
    y_true, scores = _validate(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both classes present")

    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = y_true[order]

    # Cut only where the score changes (handles ties correctly).
    distinct = np.where(np.diff(sorted_scores))[0]
    cut_idx = np.r_[distinct, len(scores) - 1]

    tps = np.cumsum(sorted_labels)[cut_idx]
    fps = (cut_idx + 1) - tps
    tpr = np.r_[0.0, tps / n_pos]
    fpr = np.r_[0.0, fps / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[cut_idx]]
    return fpr, tpr, thresholds


def auroc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoid rule; tie-aware)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))


def precision_recall_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall points ``(precision, recall, thresholds)``.

    Points are ordered by decreasing threshold; an initial (P=1, R=0) anchor
    is appended at the end, mirroring sklearn's convention reversed.
    """
    y_true, scores = _validate(y_true, scores)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        raise ValueError("precision_recall_curve needs at least one positive")

    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = y_true[order]

    distinct = np.where(np.diff(sorted_scores))[0]
    cut_idx = np.r_[distinct, len(scores) - 1]

    tps = np.cumsum(sorted_labels)[cut_idx]
    predicted_pos = cut_idx + 1
    precision = tps / predicted_pos
    recall = tps / n_pos
    thresholds = sorted_scores[cut_idx]
    # Append the (R=0, P=1) anchor.
    precision = np.r_[precision, 1.0]
    recall = np.r_[recall, 0.0]
    return precision, recall, thresholds


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Average precision: ``Σ_i (R_i − R_{i−1}) P_i`` over decreasing thresholds."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    # Arrays run from high threshold (low recall) to low threshold plus the
    # appended anchor; integrate over recall increments.
    recall_steps = np.diff(np.r_[0.0, recall[:-1]])
    return float((recall_steps * precision[:-1]).sum())


def auprc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (alias of average precision)."""
    return average_precision(y_true, scores)


def precision_at_k(y_true: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of true positives among the top-``k`` ranked instances.

    The operational metric of the paper's motivating scenario: how much of
    an analyst's fixed review budget lands on real target anomalies.
    """
    y_true, scores = _validate(y_true, scores)
    if not 1 <= k <= len(scores):
        raise ValueError(f"k must be in [1, {len(scores)}]")
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float(y_true[top].mean())
