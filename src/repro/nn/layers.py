"""Layer and module abstractions.

A :class:`Module` owns parameters (:class:`~repro.autodiff.Tensor` objects
with ``requires_grad=True``) and implements ``forward``. :class:`Sequential`
chains modules. Only the layer types needed by the paper's tabular models
are provided: fully-connected layers and elementwise activations.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.autodiff import Tensor
from repro.nn.initializers import get_initializer


class Module:
    """Base class for neural modules."""

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def parameters(self) -> List[Tensor]:
        """Return the list of trainable tensors owned by this module."""
        return []

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> List[np.ndarray]:
        """Snapshot parameter values (copies, in ``parameters()`` order)."""
        return [param.data.copy() for param in self.parameters()]

    def load_state_dict(self, state: Iterable[np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict` output."""
        params = self.parameters()
        state = list(state)
        if len(state) != len(params):
            raise ValueError(f"state has {len(state)} arrays, module has {len(params)} parameters")
        for param, value in zip(params, state):
            if param.data.shape != value.shape:
                raise ValueError(f"shape mismatch: {param.data.shape} vs {value.shape}")
            param.data = value.copy()


class Dense(Module):
    """Fully-connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions.
    weight_init:
        Name of an initializer from :mod:`repro.nn.initializers`.
    bias:
        Whether to include the additive bias term.
    rng:
        Numpy random generator for reproducible initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "xavier_uniform",
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(weight_init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init(in_features, out_features, rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def parameters(self) -> List[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": lambda t: t.relu(),
    "leaky_relu": lambda t: t.leaky_relu(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "softplus": lambda t: t.softplus(),
    "linear": lambda t: t,
}


class Activation(Module):
    """Elementwise activation layer referenced by name."""

    def __init__(self, name: str):
        if name not in _ACTIVATIONS:
            raise KeyError(f"unknown activation {name!r}; choices: {sorted(_ACTIVATIONS)}")
        self.name = name
        self._func = _ACTIVATIONS[name]

    def forward(self, x: Tensor) -> Tensor:
        return self._func(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def append(self, module: Module) -> None:
        self.modules.append(module)


def mlp(
    sizes: List[int],
    activation: str = "relu",
    output_activation: str = "linear",
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a plain MLP from a list of layer sizes.

    ``sizes = [in, h1, ..., out]`` produces ``Dense -> act -> ... -> Dense``
    with ``output_activation`` applied after the final layer.
    """
    if len(sizes) < 2:
        raise ValueError("mlp needs at least input and output sizes")
    rng = rng if rng is not None else np.random.default_rng()
    weight_init = "he_normal" if activation in ("relu", "leaky_relu") else "xavier_uniform"
    layers: List[Module] = []
    for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layers.append(Dense(fan_in, fan_out, weight_init=weight_init, rng=rng))
        is_last = i == len(sizes) - 2
        name = output_activation if is_last else activation
        if name != "linear":
            layers.append(Activation(name))
    return Sequential(*layers)
