"""Compiled, graph-free inference over :class:`~repro.nn.layers.Module` trees.

Training needs the autodiff graph; serving does not. A forward pass
through the graph engine pays for ``Tensor`` wrappers, per-op output
allocation, and activation retention bookkeeping that only ``backward``
would ever use. :func:`compile_inference` walks a module tree once
(``Dense`` / ``Activation`` / ``Sequential`` nesting, plus inference-mode
``Dropout``, which is the identity) and emits a
:class:`CompiledInference` plan: a flat list of steps executed as plain
numpy calls into preallocated buffers — no ``Tensor`` objects, no graph,
no ``no_grad`` juggling.

The numeric contract: at ``float64`` (the default, per the
:mod:`repro.backend` dtype policy) the compiled path executes the exact
same floating-point operations as the graph forward, so outputs agree to
machine precision (the parity suite asserts atol 1e-9). ``float32`` is
an explicit opt-in (``dtype="float32"``) that casts the weights once at
compile time and trades ~1e-6 relative error for roughly double
throughput.

Weights are captured *by reference* at compile time (no copy at
``float64``); optimizers in this repository rebind ``param.data`` on
every step, so a compiled plan is a snapshot — recompile after updating
weights. :func:`~repro.nn.train.forward_in_batches` does exactly that
(compilation is a cheap tree walk), which is how every read path in the
repository picks up the compiled engine automatically.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.backend.policy import DtypeLike, resolve_dtype
from repro.nn.layers import Activation, Dense, Module, Sequential
from repro.nn.regularization import Dropout


class NotCompilableError(TypeError):
    """The module tree contains something the compiled path cannot run.

    Raised for unknown module types, activations without a compiled
    kernel, and training-mode dropout (whose stochastic mask belongs to
    the graph engine). Callers that can fall back to the graph forward
    (``forward_in_batches``) catch this and do so.
    """


# -- graph-forward escape hatch (parity tests, A/B benchmarks) ----------
class _ForcedGraph(threading.local):
    active = False


_FORCED_GRAPH = _ForcedGraph()


def graph_forward_forced() -> bool:
    """Whether this thread is inside :func:`force_graph_forward`."""
    return _FORCED_GRAPH.active


@contextlib.contextmanager
def force_graph_forward() -> Iterator[None]:
    """Route ``forward_in_batches`` through the graph engine in this thread.

    The escape hatch the parity tests and the inference benchmark use to
    compare the two execution paths on identical inputs.
    """
    previous = _FORCED_GRAPH.active
    _FORCED_GRAPH.active = True
    try:
        yield
    finally:
        _FORCED_GRAPH.active = previous


# -- activation kernels -------------------------------------------------
# Each kernel may work in place on its argument (it always owns it) and
# must return the result array. The float64 sequences mirror the graph
# ops exactly so parity holds to machine precision.
def _relu_kernel(x: np.ndarray) -> np.ndarray:
    np.maximum(x, 0.0, out=x)
    return x


def _leaky_relu_kernel(x: np.ndarray) -> np.ndarray:
    np.multiply(x, np.where(x > 0, x.dtype.type(1.0), x.dtype.type(0.01)), out=x)
    return x


def _tanh_kernel(x: np.ndarray) -> np.ndarray:
    np.tanh(x, out=x)
    return x


def _sigmoid_kernel(x: np.ndarray) -> np.ndarray:
    # 1 / (1 + exp(-clip(x))), the same guarded form as Tensor.sigmoid.
    np.clip(x, -500, 500, out=x)
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += x.dtype.type(1.0)
    np.reciprocal(x, out=x)
    return x


def _softplus_kernel(x: np.ndarray) -> np.ndarray:
    np.logaddexp(x.dtype.type(0.0), x, out=x)
    return x


_KERNELS: dict = {
    "relu": _relu_kernel,
    "leaky_relu": _leaky_relu_kernel,
    "tanh": _tanh_kernel,
    "sigmoid": _sigmoid_kernel,
    "softplus": _softplus_kernel,
    "linear": None,  # identity; dropped at compile time
}

_DENSE = 0
_ACT = 1


def _flatten(module: Module) -> Iterator[Module]:
    """Yield the leaf modules of a (possibly nested) Sequential tree."""
    if isinstance(module, Sequential):
        for child in module.modules:
            yield from _flatten(child)
    elif isinstance(module, Dropout):
        if module.training and module.p > 0.0:
            raise NotCompilableError(
                "training-mode Dropout cannot be compiled; call "
                "set_training(module, False) first or use the graph forward"
            )
        # Inference-mode dropout is the identity: skip it.
    elif hasattr(module, "modules"):
        # Sequential-like containers (e.g. an object exposing .modules).
        for child in module.modules:
            yield from _flatten(child)
    else:
        yield module


class CompiledInference:
    """An executable forward plan over plain arrays.

    Call it with a 2-D batch ``(n, in_features)``; it returns a *fresh*
    ``(n, out_features)`` array of the compiled dtype. Internal buffers
    are preallocated per batch size and reused across calls, so repeated
    same-sized batches (the serving steady state) run allocation-free
    except for the output copy.
    """

    __slots__ = ("_steps", "out_dim", "in_dim", "dtype", "_buffers", "_rows")

    def __init__(
        self,
        steps: List[tuple],
        in_dim: Optional[int],
        out_dim: Optional[int],
        dtype: np.dtype,
    ):
        self._steps = steps
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.dtype = dtype
        self._buffers: List[np.ndarray] = []
        self._rows = -1

    def _allocate(self, rows: int) -> None:
        self._buffers = [
            np.empty((rows, step[2].shape[1]), dtype=self.dtype)
            for step in self._steps
            if step[0] == _DENSE
        ]
        self._rows = rows

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim != 2:
            raise ValueError(f"compiled inference expects a 2-D batch, got ndim={X.ndim}")
        n = X.shape[0]
        if n == 0:
            width = self.out_dim if self.out_dim is not None else X.shape[1]
            return np.empty((0, width), dtype=self.dtype)
        if n != self._rows:
            self._allocate(n)
        current = X
        owns_current = False  # may we mutate `current` in place?
        buffer_index = 0
        for step in self._steps:
            if step[0] == _DENSE:
                _, _, weight, bias = step
                out = self._buffers[buffer_index]
                buffer_index += 1
                np.matmul(current, weight, out=out)
                if bias is not None:
                    out += bias
                current = out
                owns_current = True
            else:
                kernel = step[1]
                if not owns_current:
                    current = np.array(current, dtype=self.dtype)
                    owns_current = True
                current = kernel(current)
        # Hand back a copy: `current` is a reused internal buffer.
        return current.copy() if owns_current else np.array(current, dtype=self.dtype)


def compile_inference(module: Module, dtype: DtypeLike = None) -> CompiledInference:
    """Compile a module tree into a graph-free forward plan.

    Parameters
    ----------
    module:
        A :class:`~repro.nn.layers.Module` built from ``Dense``,
        ``Activation``, ``Sequential`` (arbitrarily nested), and
        inference-mode ``Dropout``. Anything else raises
        :class:`NotCompilableError`.
    dtype:
        Execution precision: ``None`` (the thread's policy default,
        normally float64), ``"float64"``, or ``"float32"``. Weights are
        captured by reference at float64 and cast once at float32.

    Returns
    -------
    CompiledInference
        The executable plan. It snapshots current weights; recompile
        after an optimizer step or ``load_state_dict``.
    """
    resolved = resolve_dtype(dtype)
    steps: List[tuple] = []
    in_dim: Optional[int] = None
    out_dim: Optional[int] = None
    for leaf in _flatten(module):
        if isinstance(leaf, Dense):
            weight = leaf.weight.data
            bias = leaf.bias.data if leaf.bias is not None else None
            if weight.dtype != resolved:
                weight = weight.astype(resolved)
                bias = bias.astype(resolved) if bias is not None else None
            if in_dim is None:
                in_dim = int(leaf.in_features)
            out_dim = int(leaf.out_features)
            steps.append((_DENSE, None, weight, bias))
        elif isinstance(leaf, Activation):
            kernel = _KERNELS.get(leaf.name, _MISSING)
            if kernel is _MISSING:
                raise NotCompilableError(
                    f"activation {leaf.name!r} has no compiled kernel"
                )
            if kernel is not None:
                steps.append((_ACT, kernel))
        else:
            raise NotCompilableError(
                f"module {type(leaf).__name__} is not supported by the "
                "compiled inference path"
            )
    return CompiledInference(steps, in_dim, out_dim, resolved)


_MISSING = object()
