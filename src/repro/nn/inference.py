"""Compiled, graph-free inference over :class:`~repro.nn.layers.Module` trees.

Training needs the autodiff graph; serving does not. A forward pass
through the graph engine pays for ``Tensor`` wrappers, per-op output
allocation, and activation retention bookkeeping that only ``backward``
would ever use. :func:`compile_inference` walks a module tree once
(``Dense`` / ``Activation`` / ``Sequential`` nesting, plus inference-mode
``Dropout``, which is the identity) and emits a
:class:`CompiledInference` plan: a flat list of steps executed as plain
numpy calls into preallocated buffers — no ``Tensor`` objects, no graph,
no ``no_grad`` juggling.

Three layers of the serving fast path live here:

- **Fused Dense+activation steps.** By default each ``Dense`` and the
  activation that follows it compile into one fused kernel dispatched
  through :func:`repro.backend.ops.fused_dense_act` (so a second backend
  can substitute its own implementation): matmul, bias add, and the
  nonlinearity execute per row tile into a preallocated output buffer.
  Fused results agree with the unfused sequence to atol 1e-12; the
  escape hatch is :func:`disable_fused_kernels` (or
  ``compile_inference(..., fused=False)``), which restores the unfused
  op-for-op replay of the graph forward — **bitwise** identical at
  float64.

- **Destination writing.** The final dense segment of a plan writes
  straight into the caller-visible output array (``plan(X, out=...)``
  or a freshly allocated result), eliminating the result copy — and,
  via :func:`~repro.nn.train.forward_in_batches`, the cross-chunk
  ``concatenate`` — that previously cost two full passes over the
  output on every call.

- **A weight-keyed plan cache.** :func:`cached_inference` memoizes
  compiled plans per module keyed on the tuple of parameter-array
  ``id()``\\ s (plus dtype and a structural fingerprint). Optimizers in
  this repository rebind ``param.data`` on every step, so a stale key
  detects weight updates exactly and forces a recompile; repeated
  serving calls against frozen weights skip the tree walk entirely.
  Cache entries hold strong references to the arrays they captured, so
  an ``id()`` can never be recycled into a false hit. The cache is
  per-thread (plans own mutable buffers); hits/misses/invalidations are
  process-wide counters readable via :func:`plan_cache_stats`.

The numeric contract: at ``float64`` (the default, per the
:mod:`repro.backend` dtype policy) the unfused compiled path executes
the exact same floating-point operations as the graph forward, so
outputs agree bitwise (the parity suite asserts atol 1e-9 and equality).
``float32`` is an explicit opt-in (``dtype="float32"``) that casts the
weights once at compile time and trades ~1e-6 relative error for roughly
double throughput.

Weights are captured *by reference* at compile time (no copy at
``float64``). In-place writes to a captured array (``param.data[:] =
...``) are invisible to the cache key — rebind (``param.data = ...``)
or call :func:`clear_plan_cache` after such edits. Structural edits that
preserve every container's length *and* parameter identity (e.g.
swapping one ``Activation`` for another in place) likewise require
:func:`clear_plan_cache`.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.backend import ops as B
from repro.backend.numpy_backend import INPLACE_ACTIVATIONS
from repro.backend.registry import active_backend
from repro.backend.policy import DtypeLike, resolve_dtype
from repro.nn.layers import Activation, Dense, Module, Sequential
from repro.nn.regularization import Dropout


class NotCompilableError(TypeError):
    """The module tree contains something the compiled path cannot run.

    Raised for unknown module types, activations without a compiled
    kernel, and training-mode dropout (whose stochastic mask belongs to
    the graph engine). Callers that can fall back to the graph forward
    (``forward_in_batches``) catch this and do so.
    """


# -- graph-forward escape hatch (parity tests, A/B benchmarks) ----------
class _ForcedGraph(threading.local):
    active = False


_FORCED_GRAPH = _ForcedGraph()


def graph_forward_forced() -> bool:
    """Whether this thread is inside :func:`force_graph_forward`."""
    return _FORCED_GRAPH.active


@contextlib.contextmanager
def force_graph_forward() -> Iterator[None]:
    """Route ``forward_in_batches`` through the graph engine in this thread.

    The escape hatch the parity tests and the inference benchmark use to
    compare the two execution paths on identical inputs.
    """
    previous = _FORCED_GRAPH.active
    _FORCED_GRAPH.active = True
    try:
        yield
    finally:
        _FORCED_GRAPH.active = previous


# -- fused-kernel escape hatch ------------------------------------------
class _FusedPolicy(threading.local):
    enabled = True


_FUSED_POLICY = _FusedPolicy()


def fused_kernels_enabled() -> bool:
    """Whether newly compiled plans in this thread fuse Dense+activation."""
    return _FUSED_POLICY.enabled and B.supports_fused_dense_act()


@contextlib.contextmanager
def disable_fused_kernels() -> Iterator[None]:
    """Compile plans with the unfused (bitwise graph-parity) op sequence.

    The fused-kernel escape hatch: inside the block every new
    compilation in this thread uses separate matmul / bias-add /
    activation steps, replaying the graph forward's exact float64 op
    sequence. Cached fused plans are not evicted — fused and unfused
    plans occupy distinct cache slots.
    """
    previous = _FUSED_POLICY.enabled
    _FUSED_POLICY.enabled = False
    try:
        yield
    finally:
        _FUSED_POLICY.enabled = previous


# -- activation kernels -------------------------------------------------
# The in-place kernels live in repro.backend.numpy_backend (the fused
# Dense+activation kernel shares them); the unfused compiled path calls
# them directly so its float64 op sequence mirrors the graph exactly.
_KERNELS = INPLACE_ACTIVATIONS

_DENSE = 0
_ACT = 1
_FUSED = 2

_MISSING = object()


def _collect(
    module: Module,
    leaves: List[Module],
    dropouts: List[Dropout],
    containers: List[Tuple[object, int]],
) -> None:
    """Flatten a module tree, recording cache-validation guards.

    ``leaves`` receives the Dense/Activation leaves in execution order;
    ``dropouts`` every Dropout encountered (the cache must refuse a plan
    when one is later switched to training mode); ``containers`` each
    Sequential-like node with its current child count (the structural
    fingerprint — an ``append`` invalidates the cached plan).
    """
    if isinstance(module, Sequential) or (
        not isinstance(module, Dropout) and hasattr(module, "modules")
    ):
        containers.append((module, len(module.modules)))
        for child in module.modules:
            _collect(child, leaves, dropouts, containers)
    elif isinstance(module, Dropout):
        if module.training and module.p > 0.0:
            raise NotCompilableError(
                "training-mode Dropout cannot be compiled; call "
                "set_training(module, False) first or use the graph forward"
            )
        # Inference-mode dropout is the identity: skip it.
        dropouts.append(module)
    else:
        leaves.append(module)


class CompiledInference:
    """An executable forward plan over plain arrays.

    Call it with a 2-D batch ``(n, in_features)``; it returns a
    ``(n, out_features)`` array of the compiled dtype — a fresh array,
    or ``out`` when the caller passes one (``plan(X, out=dest)`` writes
    the final dense segment straight into ``dest``, which is how
    ``forward_in_batches`` assembles multi-chunk results without a
    concatenate). Internal buffers are preallocated per batch size and
    reused across calls, so repeated same-sized batches (the serving
    steady state) run allocation-free.
    """

    __slots__ = (
        "_steps", "out_dim", "in_dim", "dtype", "fused",
        "_buffers", "_rows", "_last_matmul",
    )

    def __init__(
        self,
        steps: List[tuple],
        in_dim: Optional[int],
        out_dim: Optional[int],
        dtype: np.dtype,
        fused: bool = False,
    ):
        self._steps = steps
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.dtype = dtype
        self.fused = fused
        self._buffers: List[Optional[np.ndarray]] = []
        self._rows = -1
        # Index of the last matmul step: it (and the in-place activation
        # steps after it) writes into the caller-visible destination
        # rather than an internal buffer.
        self._last_matmul = max(
            (i for i, step in enumerate(steps) if step[0] != _ACT), default=None
        )

    def _allocate(self, rows: int) -> None:
        self._buffers = [
            None
            if step[0] == _ACT or i == self._last_matmul
            else np.empty((rows, step[2].shape[1]), dtype=self.dtype)
            for i, step in enumerate(self._steps)
        ]
        self._rows = rows

    def _destination(self, n: int, out: Optional[np.ndarray]) -> np.ndarray:
        width = self.out_dim if self.out_dim is not None else self.in_dim
        if out is None:
            return np.empty((n, width), dtype=self.dtype)
        if out.shape != (n, width):
            raise ValueError(
                f"out has shape {out.shape}, plan produces ({n}, {width})"
            )
        if out.dtype != self.dtype:
            raise ValueError(f"out has dtype {out.dtype}, plan runs {self.dtype}")
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        return out

    def __call__(
        self, X: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim != 2:
            raise ValueError(f"compiled inference expects a 2-D batch, got ndim={X.ndim}")
        n = X.shape[0]
        if n == 0:
            if out is not None:
                return self._destination(0, out)
            width = self.out_dim if self.out_dim is not None else X.shape[1]
            return np.empty((0, width), dtype=self.dtype)
        if self._last_matmul is None:
            # Pure activation stack: copy the input, apply in place.
            if self.out_dim is None and out is not None and out.shape[1] != X.shape[1]:
                raise ValueError(
                    f"out has width {out.shape[1]}, input has {X.shape[1]}"
                )
            dest = out if out is not None else np.empty_like(X)
            np.copyto(dest, X)
            for step in self._steps:
                step[1](dest)
            return dest
        if n != self._rows:
            self._allocate(n)
        dest = self._destination(n, out)
        current = X
        owns_current = False  # may we mutate `current` in place?
        for i, step in enumerate(self._steps):
            kind = step[0]
            if kind == _ACT:
                if not owns_current:
                    current = np.array(current, dtype=self.dtype)
                    owns_current = True
                current = step[1](current)
                continue
            target = dest if i == self._last_matmul else self._buffers[i]
            if kind == _DENSE:
                _, _, weight, bias = step
                np.matmul(current, weight, out=target)
                if bias is not None:
                    target += bias
            else:  # _FUSED
                _, act_name, weight, bias = step
                B.fused_dense_act(current, weight, bias, act_name, target)
            current = target
            owns_current = True
        return current


def _compile_with_meta(
    module: Module, resolved: np.dtype, fused: bool
) -> Tuple[CompiledInference, List, List, List]:
    """Compile, returning the plan plus the cache-validation metadata."""
    leaves: List[Module] = []
    dropouts: List[Dropout] = []
    containers: List[Tuple[object, int]] = []
    _collect(module, leaves, dropouts, containers)
    steps: List[tuple] = []
    params: List = []
    in_dim: Optional[int] = None
    out_dim: Optional[int] = None
    for leaf in leaves:
        if isinstance(leaf, Dense):
            params.append(leaf.weight)
            weight = leaf.weight.data
            bias = None
            if leaf.bias is not None:
                params.append(leaf.bias)
                bias = leaf.bias.data
            if weight.dtype != resolved:
                weight = weight.astype(resolved)
                bias = bias.astype(resolved) if bias is not None else None
            if in_dim is None:
                in_dim = int(leaf.in_features)
            out_dim = int(leaf.out_features)
            steps.append((_DENSE, None, weight, bias))
        elif isinstance(leaf, Activation):
            kernel = _KERNELS.get(leaf.name, _MISSING)
            if kernel is _MISSING:
                raise NotCompilableError(
                    f"activation {leaf.name!r} has no compiled kernel"
                )
            if kernel is None:
                continue  # linear: identity, dropped at compile time
            if fused and steps and steps[-1][0] == _DENSE:
                _, _, weight, bias = steps[-1]
                steps[-1] = (_FUSED, leaf.name, weight, bias)
            else:
                steps.append((_ACT, kernel))
        else:
            raise NotCompilableError(
                f"module {type(leaf).__name__} is not supported by the "
                "compiled inference path"
            )
    plan = CompiledInference(steps, in_dim, out_dim, resolved, fused=fused)
    return plan, params, dropouts, containers


def compile_inference(
    module: Module, dtype: DtypeLike = None, fused: Optional[bool] = None
) -> CompiledInference:
    """Compile a module tree into a graph-free forward plan.

    Parameters
    ----------
    module:
        A :class:`~repro.nn.layers.Module` built from ``Dense``,
        ``Activation``, ``Sequential`` (arbitrarily nested), and
        inference-mode ``Dropout``. Anything else raises
        :class:`NotCompilableError`.
    dtype:
        Execution precision: ``None`` (the thread's policy default,
        normally float64), ``"float64"``, or ``"float32"``. Weights are
        captured by reference at float64 and cast once at float32.
    fused:
        ``None`` (default) — fuse each Dense with its following
        activation into one backend kernel when the active backend
        supports it and :func:`disable_fused_kernels` is not in effect;
        ``True``/``False`` force the choice. Unfused plans replay the
        graph's float64 op sequence bitwise; fused plans agree to
        atol 1e-12.

    Returns
    -------
    CompiledInference
        The executable plan. It snapshots current weights; recompile
        after an optimizer step or ``load_state_dict`` (or use
        :func:`cached_inference`, which detects both automatically).
    """
    resolved = resolve_dtype(dtype)
    if fused is None:
        fused = fused_kernels_enabled()
    plan, _, _, _ = _compile_with_meta(module, resolved, bool(fused))
    return plan


# -- weight-keyed plan cache --------------------------------------------
class _CacheEntry:
    """One cached plan plus everything needed to validate it cheaply.

    ``params`` are the parameter *Tensors* (stable objects; optimizers
    rebind only their ``.data``), ``data_ids`` the ids of the arrays the
    plan captured, ``sources`` strong references to those arrays — an id
    can only be recycled after its array is garbage collected, so
    holding the sources makes the id comparison sound. ``dropouts`` and
    ``containers`` guard against mode flips and structural edits.
    """

    __slots__ = ("plan", "params", "data_ids", "sources", "dropouts", "containers")

    def __init__(self, plan, params, dropouts, containers):
        self.plan = plan
        self.params = params
        self.sources = tuple(p.data for p in params)
        self.data_ids = tuple(id(arr) for arr in self.sources)
        self.dropouts = dropouts
        self.containers = containers

    def valid(self) -> bool:
        if tuple(id(p.data) for p in self.params) != self.data_ids:
            return False
        for container, length in self.containers:
            if len(container.modules) != length:
                return False
        for dropout in self.dropouts:
            if dropout.training and dropout.p > 0.0:
                return False
        return True


class _PlanCache(threading.local):
    def __init__(self):
        self.modules: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


_PLAN_CACHE = _PlanCache()

_STATS_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0, "invalidations": 0}


def _count(event: str) -> None:
    with _STATS_LOCK:
        _STATS[event] += 1


def plan_cache_stats() -> dict:
    """Process-wide plan-cache counters: hits, misses, invalidations.

    A *miss* is a module/dtype combination seen for the first time; an
    *invalidation* is a stale entry (rebound ``param.data``, structural
    edit, or a dropout flipped to training mode) that forced a
    recompile. Serving telemetry snapshots these around each batch.
    """
    with _STATS_LOCK:
        return dict(_STATS)


def reset_plan_cache_stats() -> None:
    """Zero the hit/miss/invalidation counters (tests, benchmarks)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


def clear_plan_cache() -> None:
    """Drop every cached plan owned by the calling thread.

    Needed only after mutations the key cannot see: in-place writes to
    a captured ``param.data`` array, or structural edits that preserve
    container lengths and parameter identity.
    """
    _PLAN_CACHE.modules = weakref.WeakKeyDictionary()


def evict_plan(module: Module) -> bool:
    """Drop the calling thread's cached plans for one module.

    The model hot-swap path retires a network that will never be scored
    again; evicting it eagerly releases the plan's scratch buffers and
    the strong array references the cache holds (a WeakKeyDictionary
    only drops them once the *module* is collected, which the retired
    generation may delay by staying reachable for rollback). Counts as
    an invalidation in :func:`plan_cache_stats` when something was
    evicted; returns whether it was.
    """
    try:
        bucket = _PLAN_CACHE.modules.pop(module, None)
    except TypeError:  # unhashable/non-weakrefable module: never cached
        return False
    if bucket:
        _count("invalidations")
        return True
    return False


def cached_inference(
    module: Module, dtype: DtypeLike = None, fused: Optional[bool] = None
) -> CompiledInference:
    """Return a compiled plan for ``module``, reusing a cached one when valid.

    The fast path for repeated serving calls against frozen weights: a
    cache hit is two tuple comparisons — no tree walk, no buffer
    allocation. The key is the tuple of parameter-array ``id()``\\ s
    plus the dtype, fused flag, and the active backend's name —
    different backends compile to different fused kernels, so switching
    backends mid-process recompiles rather than replaying another
    backend's plan (the regression suite pins this). Optimizers rebind
    ``param.data`` on every step, so any weight update also changes the
    key and forces a recompile. Plans are cached per-thread because
    they own mutable scratch buffers.

    Raises :class:`NotCompilableError` exactly like
    :func:`compile_inference` (e.g. training-mode dropout), leaving any
    previously cached entry intact.
    """
    resolved = resolve_dtype(dtype)
    if fused is None:
        fused = fused_kernels_enabled()
    key = (resolved.str, bool(fused), getattr(active_backend(), "name", "numpy"))
    try:
        bucket = _PLAN_CACHE.modules.setdefault(module, {})
    except TypeError:  # unhashable/non-weakrefable module: compile fresh
        _count("misses")
        return compile_inference(module, dtype=resolved, fused=fused)
    entry = bucket.get(key)
    if entry is not None:
        if entry.valid():
            _count("hits")
            return entry.plan
        _count("invalidations")
    else:
        _count("misses")
    plan, params, dropouts, containers = _compile_with_meta(
        module, resolved, bool(fused)
    )
    bucket[key] = _CacheEntry(plan, params, dropouts, containers)
    return plan
