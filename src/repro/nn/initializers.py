"""Weight initialization schemes for dense layers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization — default for tanh/sigmoid nets."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization — default for ReLU nets."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (used for biases)."""
    del rng
    return np.zeros((fan_in, fan_out))


INITIALIZERS = {
    "xavier_uniform": xavier_uniform,
    "he_normal": he_normal,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initializer by name, raising ``KeyError`` with choices."""
    if name not in INITIALIZERS:
        raise KeyError(f"unknown initializer {name!r}; choices: {sorted(INITIALIZERS)}")
    return INITIALIZERS[name]
