"""Generic mini-batch training utilities."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Module
from repro.nn.optimizers import Optimizer


def iterate_minibatches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    The final partial batch is included. With ``shuffle=False`` the order is
    sequential, which keeps evaluation deterministic.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        yield indices[start : start + batch_size]


def train_epoch(
    model: Module,
    optimizer: Optimizer,
    loss_fn: Callable[[np.ndarray], Tensor],
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Run one epoch; returns the mean batch loss.

    ``loss_fn`` maps a batch index array to a scalar loss tensor. This
    indirection lets callers close over arbitrary batch payloads (several
    datasets at once, per-instance weights, ...), which the TargAD classifier
    needs.
    """
    total = 0.0
    batches = 0
    for batch_idx in iterate_minibatches(n, batch_size, rng=rng):
        optimizer.zero_grad()
        loss = loss_fn(batch_idx)
        loss.backward()
        optimizer.step()
        total += float(loss.data)
        batches += 1
    return total / max(batches, 1)


def optimizer_state(optimizer: Optimizer) -> dict:
    """Snapshot an optimizer's internal state (copies).

    Returns ``{"lr": float, "step_count": int | None, "slots": {name: [arrays]}}``
    covering the moment/velocity buffers of :class:`~repro.nn.optimizers.Adam`,
    ``SGD``, and ``RMSprop``. Slots that have not been materialized yet (no
    ``step()`` taken) are omitted. Used by training checkpoint/resume so an
    interrupted run continues with identical optimizer dynamics.
    """
    slot_names = {"_m": "m", "_v": "v", "_velocity": "velocity", "_sq": "sq"}
    slots = {}
    for attr, name in slot_names.items():
        value = getattr(optimizer, attr, None)
        if value is not None:
            slots[name] = [np.array(arr, copy=True) for arr in value]
    return {
        "lr": float(optimizer.lr),
        "step_count": getattr(optimizer, "_step_count", None),
        "slots": slots,
    }


def load_optimizer_state(optimizer: Optimizer, state: dict) -> None:
    """Restore a snapshot produced by :func:`optimizer_state`.

    The optimizer must wrap the same parameter list (same order/shapes) it
    had when the snapshot was taken.
    """
    optimizer.lr = float(state["lr"])
    if state.get("step_count") is not None and hasattr(optimizer, "_step_count"):
        optimizer._step_count = int(state["step_count"])
    slot_names = {"m": "_m", "v": "_v", "velocity": "_velocity", "sq": "_sq"}
    for name, arrays in state.get("slots", {}).items():
        attr = slot_names[name]
        if not hasattr(optimizer, attr):
            raise ValueError(f"optimizer {type(optimizer).__name__} has no slot {name!r}")
        restored = [np.array(arr, copy=True) for arr in arrays]
        if len(restored) != len(optimizer.params):
            raise ValueError(
                f"slot {name!r} has {len(restored)} arrays, "
                f"optimizer has {len(optimizer.params)} parameters"
            )
        setattr(optimizer, attr, restored)


def infer_output_dim(model: Module) -> Optional[int]:
    """Output width of ``model``, inferred from its last ``Dense`` layer.

    Width-preserving modules (activations, dropout) after the final dense
    layer are fine; returns ``None`` when the model contains no layer with
    an ``out_features`` attribute (e.g. a pure activation stack).
    """
    modules = getattr(model, "modules", None)
    if modules is None:
        modules = [model]
    for module in reversed(list(modules)):
        nested = infer_output_dim(module) if hasattr(module, "modules") else None
        if nested is not None:
            return nested
        out_features = getattr(module, "out_features", None)
        if out_features is not None:
            return int(out_features)
    return None


def forward_in_batches(
    model: Module,
    X: np.ndarray,
    batch_size: int = 4096,
    dtype=None,
    compiled: Optional[bool] = None,
) -> np.ndarray:
    """Run ``model`` over ``X`` without building a graph, batched for memory.

    This is the repository's hot read path: TargAD scoring, the
    candidate-selection autoencoders, serving, and every neural baseline
    funnel through it. By default it executes on the **compiled
    inference path** (:func:`repro.nn.inference.cached_inference`) —
    pure array calls into preallocated buffers, no ``Tensor`` objects,
    with the plan reused from the weight-keyed cache whenever the
    model's parameters have not been rebound since the last call — and
    falls back to the graph engine under ``no_grad`` only for module
    trees the compiler does not understand (custom modules,
    training-mode dropout). Multi-chunk results are written directly
    into one preallocated output array (no per-chunk copy, no final
    concatenate).

    Parameters
    ----------
    model, X, batch_size:
        As before; ``X`` is processed in ``batch_size`` chunks.
    dtype:
        Inference precision per the :mod:`repro.backend` policy:
        ``None`` (thread default, normally float64) or
        ``"float64"``/``"float32"``. The graph fallback always computes
        in float64 and casts the result.
    compiled:
        ``None`` (default) — compile when possible; ``False`` — force
        the graph engine; ``True`` — require the compiled path
        (:class:`~repro.nn.inference.NotCompilableError` propagates).

    Empty input returns an empty ``(0, out_dim)`` array (``out_dim``
    inferred from the model's last dense layer) so downstream reductions
    over axis 1 — softmax, Eq. 9 scoring, the tri-class rule — work
    unchanged on zero rows.
    """
    from repro.autodiff import no_grad
    from repro.backend.policy import resolve_dtype
    from repro.nn.inference import (
        NotCompilableError,
        cached_inference,
        graph_forward_forced,
    )

    resolved = resolve_dtype(dtype)
    plan = None
    if compiled is not False and not graph_forward_forced():
        try:
            plan = cached_inference(model, dtype=resolved)
        except NotCompilableError:
            if compiled:
                raise
    if plan is not None and len(X):
        if len(X) <= batch_size:
            return plan(X)  # single chunk: the plan returns a fresh array
        if plan.out_dim is not None:
            # Write each chunk's final dense segment straight into one
            # preallocated result — no per-chunk copy, no concatenate.
            result = np.empty((len(X), plan.out_dim), dtype=resolved)
            for start in range(0, len(X), batch_size):
                stop = start + batch_size
                plan(X[start:stop], out=result[start:stop])
            return result
        # Dense-free plan (pure activation stack): chunk widths follow
        # the input, so fall back to gathering fresh per-chunk arrays.
        outputs = [
            plan(X[start : start + batch_size])
            for start in range(0, len(X), batch_size)
        ]
        return np.concatenate(outputs, axis=0)
    if plan is None:
        outputs = []
        with no_grad():
            for start in range(0, len(X), batch_size):
                out = model(Tensor(X[start : start + batch_size]))
                outputs.append(out.data.astype(resolved, copy=False))
        if outputs:
            return np.concatenate(outputs, axis=0)
    out_dim = infer_output_dim(model)
    return np.empty((0, out_dim) if out_dim is not None else (0,), dtype=resolved)
