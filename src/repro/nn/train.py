"""Generic mini-batch training utilities."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Module
from repro.nn.optimizers import Optimizer


def iterate_minibatches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    The final partial batch is included. With ``shuffle=False`` the order is
    sequential, which keeps evaluation deterministic.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        yield indices[start : start + batch_size]


def train_epoch(
    model: Module,
    optimizer: Optimizer,
    loss_fn: Callable[[np.ndarray], Tensor],
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Run one epoch; returns the mean batch loss.

    ``loss_fn`` maps a batch index array to a scalar loss tensor. This
    indirection lets callers close over arbitrary batch payloads (several
    datasets at once, per-instance weights, ...), which the TargAD classifier
    needs.
    """
    total = 0.0
    batches = 0
    for batch_idx in iterate_minibatches(n, batch_size, rng=rng):
        optimizer.zero_grad()
        loss = loss_fn(batch_idx)
        loss.backward()
        optimizer.step()
        total += float(loss.data)
        batches += 1
    return total / max(batches, 1)


def forward_in_batches(
    model: Module,
    X: np.ndarray,
    batch_size: int = 4096,
) -> np.ndarray:
    """Run ``model`` over ``X`` without building a graph, batched for memory."""
    from repro.autodiff import no_grad

    outputs = []
    with no_grad():
        for start in range(0, len(X), batch_size):
            out = model(Tensor(X[start : start + batch_size]))
            outputs.append(out.data)
    return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))
