"""Generic mini-batch training utilities."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Module
from repro.nn.optimizers import Optimizer


def iterate_minibatches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    The final partial batch is included. With ``shuffle=False`` the order is
    sequential, which keeps evaluation deterministic.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        yield indices[start : start + batch_size]


def train_epoch(
    model: Module,
    optimizer: Optimizer,
    loss_fn: Callable[[np.ndarray], Tensor],
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Run one epoch; returns the mean batch loss.

    ``loss_fn`` maps a batch index array to a scalar loss tensor. This
    indirection lets callers close over arbitrary batch payloads (several
    datasets at once, per-instance weights, ...), which the TargAD classifier
    needs.
    """
    total = 0.0
    batches = 0
    for batch_idx in iterate_minibatches(n, batch_size, rng=rng):
        optimizer.zero_grad()
        loss = loss_fn(batch_idx)
        loss.backward()
        optimizer.step()
        total += float(loss.data)
        batches += 1
    return total / max(batches, 1)


def infer_output_dim(model: Module) -> Optional[int]:
    """Output width of ``model``, inferred from its last ``Dense`` layer.

    Width-preserving modules (activations, dropout) after the final dense
    layer are fine; returns ``None`` when the model contains no layer with
    an ``out_features`` attribute (e.g. a pure activation stack).
    """
    modules = getattr(model, "modules", None)
    if modules is None:
        modules = [model]
    for module in reversed(list(modules)):
        nested = infer_output_dim(module) if hasattr(module, "modules") else None
        if nested is not None:
            return nested
        out_features = getattr(module, "out_features", None)
        if out_features is not None:
            return int(out_features)
    return None


def forward_in_batches(
    model: Module,
    X: np.ndarray,
    batch_size: int = 4096,
) -> np.ndarray:
    """Run ``model`` over ``X`` without building a graph, batched for memory.

    Empty input returns an empty ``(0, out_dim)`` array (``out_dim``
    inferred from the model's last dense layer) so downstream reductions
    over axis 1 — softmax, Eq. 9 scoring, the tri-class rule — work
    unchanged on zero rows.
    """
    from repro.autodiff import no_grad

    outputs = []
    with no_grad():
        for start in range(0, len(X), batch_size):
            out = model(Tensor(X[start : start + batch_size]))
            outputs.append(out.data)
    if outputs:
        return np.concatenate(outputs, axis=0)
    out_dim = infer_output_dim(model)
    return np.empty((0, out_dim) if out_dim is not None else (0,))
