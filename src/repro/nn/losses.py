"""Loss functions shared across models.

All losses take and return :class:`~repro.autodiff.Tensor` objects so they
can appear anywhere in a differentiable computation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor

_EPS = 1e-12


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = pred - target
    return (diff * diff).mean()


def reconstruction_errors(pred: Tensor, target: Tensor) -> Tensor:
    """Per-row squared L2 reconstruction error ``||x - x̂||²`` (Eq. 2)."""
    diff = pred - target
    return (diff * diff).sum(axis=1)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross-entropy with integer class labels (mean over the batch)."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = logits.log_softmax(axis=1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def soft_cross_entropy(
    logits: Tensor,
    soft_targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross-entropy against soft (probability-vector) targets.

    Computes ``mean_i w_i * sum_j -t_ij log p_ij`` — the form used by the
    paper's Eq. (3) (one-hot targets) and Eq. (6) (uniform-over-target-dims
    pseudo-labels with per-instance weights).
    """
    soft_targets = np.asarray(soft_targets, dtype=np.float64)
    log_probs = logits.log_softmax(axis=1)
    per_instance = -(log_probs * Tensor(soft_targets)).sum(axis=1)
    if weights is not None:
        per_instance = per_instance * Tensor(np.asarray(weights, dtype=np.float64))
    return per_instance.mean()


def negative_entropy(logits: Tensor) -> Tensor:
    """Mean of ``sum_j p_j log p_j`` over the batch (Eq. 7 regularizer).

    Minimizing this quantity *sharpens* predictions (entropy minimization),
    which is exactly what the paper's ``L_RE`` does for labeled anomalies and
    normal candidates.
    """
    log_probs = logits.log_softmax(axis=1)
    probs = log_probs.exp()
    return (probs * log_probs).sum(axis=1).mean()


def binary_cross_entropy(pred_probs: Tensor, targets: np.ndarray) -> Tensor:
    """BCE for probabilities already in (0, 1) (used by GAN-style baselines)."""
    targets = np.asarray(targets, dtype=np.float64)
    clipped = pred_probs.clip(_EPS, 1.0 - _EPS)
    t = Tensor(targets)
    losses = -(t * clipped.log() + (1.0 - t) * (1.0 - clipped).log())
    return losses.mean()


def deviation_loss(scores: Tensor, labels: np.ndarray, margin: float = 5.0, n_ref: int = 5000,
                   rng: Optional[np.random.Generator] = None) -> Tensor:
    """DevNet's deviation loss (Pang et al. 2019).

    Scores of normal (label 0) instances are pushed toward the mean of a
    standard-normal reference sample; scores of anomalies (label 1) are
    pushed at least ``margin`` reference standard deviations above it.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    reference = rng.standard_normal(n_ref)
    mu, sigma = float(reference.mean()), float(reference.std())
    deviation = (scores - mu) / (sigma + _EPS)
    labels = np.asarray(labels, dtype=np.float64)
    lab = Tensor(labels)
    inlier_term = (1.0 - lab) * deviation.abs()
    outlier_term = lab * (Tensor(np.full(labels.shape, margin)) - deviation).relu()
    return (inlier_term + outlier_term).mean()
