"""Training regularization utilities: dropout, LR schedules, early stopping."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Module
from repro.nn.optimizers import Optimizer


class Dropout(Module):
    """Inverted dropout.

    Active only while ``training`` is True (see :func:`set_training`);
    during inference it is the identity, so no rescaling is needed at
    test time (masks are scaled by ``1/(1-p)`` during training).
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.training = True
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


def set_training(module: Module, training: bool) -> None:
    """Recursively set the ``training`` flag on dropout-like layers."""
    if hasattr(module, "training"):
        module.training = training
    for child in getattr(module, "modules", []):
        set_training(child, training)


class StepLR:
    """Multiply the optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self.base_lr = optimizer.lr

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)
        return self.optimizer.lr


class CosineLR:
    """Cosine-annealed learning rate over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> float:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )
        return self.optimizer.lr


class EarlyStopping:
    """Stop training when a monitored value stops improving.

    ``direction="min"`` for losses, ``"max"`` for scores. Keeps the best
    parameter snapshot if a module is registered via ``attach``.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0, direction: str = "min"):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if direction not in ("min", "max"):
            raise ValueError('direction must be "min" or "max"')
        self.patience = patience
        self.min_delta = min_delta
        self.direction = direction
        self.best: Optional[float] = None
        self.best_epoch = -1
        self._module: Optional[Module] = None
        self._best_state: Optional[List[np.ndarray]] = None
        self._bad_epochs = 0

    def attach(self, module: Module) -> "EarlyStopping":
        """Snapshot this module's parameters at every improvement."""
        self._module = module
        return self

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.direction == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def update(self, value: float, epoch: int) -> bool:
        """Record an epoch value; returns True when training should stop."""
        if self._improved(value):
            self.best = value
            self.best_epoch = epoch
            self._bad_epochs = 0
            if self._module is not None:
                self._best_state = self._module.state_dict()
        else:
            self._bad_epochs += 1
        return self._bad_epochs >= self.patience

    def restore_best(self) -> None:
        """Load the best snapshot back into the attached module."""
        if self._module is None or self._best_state is None:
            raise RuntimeError("no module attached or no snapshot recorded")
        self._module.load_state_dict(self._best_state)
