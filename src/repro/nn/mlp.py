"""A standalone multi-layer perceptron classifier.

This is the "conventional classifier f" of the paper (Section III-B2) in its
generic form: softmax output over ``n_classes``, trained with cross-entropy.
TargAD itself composes the same network with its custom loss; this class is
also used directly by several baselines and tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Sequential, mlp
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches, iterate_minibatches


class MLPClassifier:
    """Softmax MLP classifier with an sklearn-like interface.

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers.
    n_classes:
        Number of output classes.
    activation:
        Hidden activation name.
    lr, batch_size, epochs:
        Adam learning rate and training schedule.
    random_state:
        Seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 32),
        n_classes: int = 2,
        activation: str = "relu",
        lr: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.hidden_sizes = list(hidden_sizes)
        self.n_classes = n_classes
        self.activation = activation
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.random_state = random_state
        self.network: Optional[Sequential] = None
        self.loss_history: List[float] = []

    def _build(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden_sizes, self.n_classes]
        self.network = mlp(sizes, activation=self.activation, rng=rng)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train on dense features ``X`` and integer labels ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range for n_classes")
        rng = np.random.default_rng(self.random_state)
        self._build(X.shape[1], rng)
        optimizer = Adam(self.network.parameters(), lr=self.lr)
        self.loss_history = []
        for _ in range(self.epochs):
            epoch_loss = 0.0
            batches = 0
            for idx in iterate_minibatches(len(X), self.batch_size, rng=rng):
                optimizer.zero_grad()
                logits = self.network(Tensor(X[idx]))
                loss = softmax_cross_entropy(logits, y[idx])
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
        return self

    def _check_fitted(self) -> None:
        if self.network is None:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def logits(self, X: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) outputs."""
        self._check_fitted()
        return forward_in_batches(self.network, np.asarray(X, dtype=np.float64))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        logits = self.logits(X)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return self.predict_proba(X).argmax(axis=1)
