"""Autoencoders, including the SAD-regularized variant of TargAD's Eq. (1).

The plain :class:`Autoencoder` is a symmetric bottleneck MLP trained on the
reconstruction MSE. :class:`SADAutoencoder` adds the paper's semi-supervised
term: labeled target anomalies are penalized by the *inverse* of their
reconstruction error so they reconstruct badly, sharpening the separation
between normal instances (low error) and anomalies (high error).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Sequential, mlp
from repro.nn.losses import reconstruction_errors
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches, iterate_minibatches

_EPS = 1e-6


class Autoencoder:
    """Symmetric bottleneck autoencoder.

    ``hidden_sizes`` describes the encoder half; the decoder mirrors it. For
    example ``hidden_sizes=(64, 16)`` on 100-dim input builds
    ``100 -> 64 -> 16 -> 64 -> 100``.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 16),
        activation: str = "relu",
        lr: float = 1e-4,
        batch_size: int = 256,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        if not hidden_sizes:
            raise ValueError("hidden_sizes must be non-empty")
        self.hidden_sizes = list(hidden_sizes)
        self.activation = activation
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.random_state = random_state
        self.encoder: Optional[Sequential] = None
        self.decoder: Optional[Sequential] = None
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------
    def _build(self, n_features: int, rng: np.random.Generator) -> None:
        encoder_sizes = [n_features, *self.hidden_sizes]
        decoder_sizes = [*reversed(self.hidden_sizes), n_features]
        self.encoder = mlp(encoder_sizes, activation=self.activation,
                           output_activation=self.activation, rng=rng)
        self.decoder = mlp(decoder_sizes, activation=self.activation, rng=rng)

    def parameters(self):
        return self.encoder.parameters() + self.decoder.parameters()

    def _check_fitted(self) -> None:
        if self.encoder is None:
            raise RuntimeError("autoencoder is not fitted; call fit() first")

    def _reconstruct_tensor(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    def _reconstructor(self) -> Sequential:
        """Encoder and decoder as one chain for the compiled read path."""
        return Sequential(self.encoder, self.decoder)

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "Autoencoder":
        """Train on unlabeled data with plain reconstruction MSE."""
        X = np.asarray(X, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        self._build(X.shape[1], rng)
        optimizer = Adam(self.parameters(), lr=self.lr)
        self.loss_history = []
        for _ in range(self.epochs):
            epoch_loss, batches = 0.0, 0
            for idx in iterate_minibatches(len(X), self.batch_size, rng=rng):
                optimizer.zero_grad()
                batch = Tensor(X[idx])
                recon = self._reconstruct_tensor(batch)
                loss = reconstruction_errors(recon, batch).mean()
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
        return self

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Latent representations."""
        self._check_fitted()
        return forward_in_batches(self.encoder, np.asarray(X, dtype=np.float64))

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Decoded reconstructions.

        Runs encoder and decoder as a single fused compiled pass — one
        sweep over the data with no intermediate latent round-trip.
        """
        self._check_fitted()
        return forward_in_batches(self._reconstructor(), np.asarray(X, dtype=np.float64))

    def reconstruction_error(self, X: np.ndarray) -> np.ndarray:
        """Per-row squared L2 reconstruction error — Eq. (2), ``S^Rec``."""
        X = np.asarray(X, dtype=np.float64)
        recon = self.reconstruct(X)
        return ((X - recon) ** 2).sum(axis=1)


class SADAutoencoder(Autoencoder):
    """Autoencoder trained with the paper's Eq. (1) loss.

    ``L = mean_{x in D_U} ||x - x̂||² + (η / |D_L|) * Σ_{x in D_L} ||x - x̂||^{-2}``

    The second term penalizes *good* reconstruction of labeled target
    anomalies; minimizing the inverse error pushes their error up, so the
    bottleneck encodes only the normal manifold.
    """

    def __init__(self, eta: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        if eta < 0:
            raise ValueError("eta must be non-negative")
        self.eta = eta

    def fit(self, X_unlabeled: np.ndarray, X_labeled: Optional[np.ndarray] = None) -> "SADAutoencoder":
        """Train per Eq. (1).

        Parameters
        ----------
        X_unlabeled:
            The cluster's unlabeled instances (``D_{U_i}``).
        X_labeled:
            The labeled target anomalies (``D_L``). With ``None`` or
            ``eta == 0`` this degrades to a plain autoencoder.
        """
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        use_sad = X_labeled is not None and len(X_labeled) > 0 and self.eta > 0
        if use_sad:
            X_labeled = np.asarray(X_labeled, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        self._build(X_unlabeled.shape[1], rng)
        optimizer = Adam(self.parameters(), lr=self.lr)
        self.loss_history = []
        for _ in range(self.epochs):
            epoch_loss, batches = 0.0, 0
            for idx in iterate_minibatches(len(X_unlabeled), self.batch_size, rng=rng):
                optimizer.zero_grad()
                batch = Tensor(X_unlabeled[idx])
                recon = self._reconstruct_tensor(batch)
                loss = reconstruction_errors(recon, batch).mean()
                if use_sad:
                    labeled = Tensor(X_labeled)
                    labeled_recon = self._reconstruct_tensor(labeled)
                    labeled_errors = reconstruction_errors(labeled_recon, labeled)
                    # Inverse-error penalty; _EPS guards the pole at zero.
                    inverse = (labeled_errors + _EPS) ** -1.0
                    loss = loss + self.eta * inverse.mean()
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
        return self
