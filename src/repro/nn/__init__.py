"""Neural-network building blocks on top of :mod:`repro.autodiff`.

Provides the pieces the paper's models are assembled from: dense layers,
activation layers, sequential containers, initializers, optimizers (Adam —
the paper's choice — plus SGD and RMSprop), loss functions, a generic
mini-batch training loop, an MLP classifier, and autoencoders including the
DeepSAD-regularized variant used by TargAD's candidate-selection stage
(Eq. 1 of the paper).
"""

from repro.nn.autoencoder import Autoencoder, SADAutoencoder
from repro.nn.inference import (
    CompiledInference,
    NotCompilableError,
    cached_inference,
    clear_plan_cache,
    evict_plan,
    compile_inference,
    disable_fused_kernels,
    force_graph_forward,
    fused_kernels_enabled,
    plan_cache_stats,
    reset_plan_cache_stats,
)
from repro.nn.initializers import he_normal, xavier_uniform, zeros
from repro.nn.layers import Activation, Dense, Module, Sequential
from repro.nn.losses import (
    binary_cross_entropy,
    mse_loss,
    soft_cross_entropy,
    softmax_cross_entropy,
)
from repro.nn.mlp import MLPClassifier
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSprop
from repro.nn.regularization import (
    CosineLR,
    Dropout,
    EarlyStopping,
    StepLR,
    set_training,
)
from repro.nn.train import forward_in_batches, iterate_minibatches, train_epoch

__all__ = [
    "Activation",
    "Adam",
    "Autoencoder",
    "CompiledInference",
    "CosineLR",
    "Dense",
    "Dropout",
    "EarlyStopping",
    "MLPClassifier",
    "Module",
    "NotCompilableError",
    "Optimizer",
    "RMSprop",
    "SADAutoencoder",
    "SGD",
    "Sequential",
    "StepLR",
    "binary_cross_entropy",
    "cached_inference",
    "clear_plan_cache",
    "evict_plan",
    "compile_inference",
    "disable_fused_kernels",
    "force_graph_forward",
    "forward_in_batches",
    "fused_kernels_enabled",
    "he_normal",
    "plan_cache_stats",
    "reset_plan_cache_stats",
    "iterate_minibatches",
    "mse_loss",
    "set_training",
    "soft_cross_entropy",
    "softmax_cross_entropy",
    "train_epoch",
    "xavier_uniform",
    "zeros",
]
