"""First-order optimizers and gradient utilities.

The paper trains all components with Adam; SGD (with momentum) and RMSprop
are provided for completeness and for ablation experiments.
:func:`clip_grad_norm` guards adversarial/RL training loops against
exploding gradients.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autodiff import Tensor


def clip_grad_norm(params: List[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: List[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adaptive Moment Estimation (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """RMSprop with exponential moving average of squared gradients."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 0.001,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self._sq: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self._sq is None:
            self._sq = [np.zeros_like(p.data) for p in self.params]
        for param, sq in zip(self.params, self._sq):
            if param.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * param.grad**2
            param.data = param.data - self.lr * param.grad / (np.sqrt(sq) + self.eps)
