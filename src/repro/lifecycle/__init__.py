"""Drift-triggered continual learning with zero-downtime model hot-swap."""

from repro.lifecycle.manager import (
    DriftPolicy,
    LifecycleEvent,
    LifecycleManager,
    RefitRejected,
)
from repro.lifecycle.replay import (
    DriftReplayResult,
    drift_replay,
    make_split_oracle,
    shift_regime,
)

__all__ = [
    "DriftPolicy",
    "DriftReplayResult",
    "LifecycleEvent",
    "LifecycleManager",
    "RefitRejected",
    "drift_replay",
    "make_split_oracle",
    "shift_regime",
]
