"""Drift-scenario replay harness for the lifecycle loop.

Drives a :class:`~repro.lifecycle.manager.LifecycleManager` through a
two-phase traffic replay — warm batches drawn from the training regime,
then batches from a shifted regime — and records the numbers the drift
story is judged on:

- **batches to detection** — drifted batches served before the debounce
  policy confirmed the event;
- **detection→swap latency** — wall-clock seconds from confirmation to
  the hot-swap completing (from the swap event's details);
- **accuracy recovery curve** — AUPRC of the *live* model on a held-out
  evaluation slice from the shifted regime, measured after every batch,
  so the refit's recovery (and the pre-swap degradation) is visible.

Used by ``repro lifecycle`` (CLI), ``examples/lifecycle_demo.py`` and
the ``scripts/bench_replay.py`` drift scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.lifecycle.manager import LifecycleManager
from repro.metrics.ranking import auprc

__all__ = ["DriftReplayResult", "drift_replay", "make_split_oracle", "shift_regime"]


def shift_regime(X: np.ndarray, shift: float, fraction: float = 0.5,
                 seed: int = 0) -> np.ndarray:
    """Covariate-shift a pool: add ``shift`` to a seeded feature subset.

    Shifting only a fraction of the features keeps the regime change
    detectable per-feature (large KS on the shifted columns) while
    leaving the rest of the geometry intact — closer to a real drift
    than translating every axis.
    """
    X = np.asarray(X, dtype=np.float64)
    rng = np.random.default_rng(seed)
    n_shift = max(int(round(X.shape[1] * fraction)), 1)
    cols = rng.choice(X.shape[1], size=n_shift, replace=False)
    out = X.copy()
    out[:, cols] += shift
    return out


def make_split_oracle(X_rows: np.ndarray, labels: np.ndarray) -> Callable:
    """Oracle answering from ground truth, keyed by exact row bytes.

    ``labels`` follows the :data:`repro.core.active.Oracle` contract
    (0 = not a target anomaly, 1..m = target class). Rows the oracle has
    never seen answer 0 — a conservative default matching a human
    analyst who cannot confirm what they cannot identify.
    """
    table = {
        np.asarray(row, dtype=np.float64).tobytes(): int(label)
        for row, label in zip(X_rows, labels)
    }

    def oracle(rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        return np.array([table.get(row.tobytes(), 0) for row in rows],
                        dtype=np.int64)

    return oracle


@dataclass
class DriftReplayResult:
    """Per-batch trace plus the headline drift-recovery numbers."""

    batches: List[dict] = field(default_factory=list)
    batches_to_detection: Optional[int] = None
    detection_to_swap_seconds: Optional[float] = None
    auprc_before_drift: float = 0.0
    auprc_at_detection: float = 0.0
    auprc_final: float = 0.0
    swaps: int = 0
    rollbacks: int = 0

    @property
    def auprc_curve(self) -> List[float]:
        return [b["auprc"] for b in self.batches]

    @property
    def recovered(self) -> bool:
        """A swap happened and the new generation held the accuracy line.

        ``auprc_before_drift`` is the *old* model scored on the shifted
        eval slice — the accuracy the deployment would be stuck at
        without a refit. Recovery means a swap completed and the final
        live model reaches at least 95% of that floor (normally it
        exceeds it; the tolerance absorbs gate-passing refits on easy
        regimes where the old model was never badly hurt).
        """
        return self.swaps > 0 and (
            self.auprc_final >= 0.95 * self.auprc_before_drift
        )

    def to_dict(self) -> dict:
        return {
            "batches_to_detection": self.batches_to_detection,
            "detection_to_swap_seconds": self.detection_to_swap_seconds,
            "auprc_before_drift": round(self.auprc_before_drift, 4),
            "auprc_at_detection": round(self.auprc_at_detection, 4),
            "auprc_final": round(self.auprc_final, 4),
            "recovered": self.recovered,
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "n_batches": len(self.batches),
            "auprc_curve": [round(v, 4) for v in self.auprc_curve],
        }


def drift_replay(
    manager: LifecycleManager,
    X_warm: np.ndarray,
    X_drift: np.ndarray,
    X_eval: np.ndarray,
    y_eval: np.ndarray,
    batch_rows: int = 64,
    progress: Optional[Callable[[str], None]] = None,
) -> DriftReplayResult:
    """Replay warm then drifted traffic; trace detection and recovery.

    ``X_eval``/``y_eval`` are a held-out slice *from the shifted regime*
    — the AUPRC curve on it shows the degradation the drift causes and
    the recovery the swap buys. The manager's own validation slice
    (used for the swap gate) must be disjoint from this one.
    """
    say = progress if progress is not None else (lambda msg: None)
    result = DriftReplayResult()
    y_eval = np.asarray(y_eval, dtype=np.int64).ravel()

    def serve(X_batch: np.ndarray, phase: str) -> None:
        gen_before = manager.pipeline.generation
        batch = manager.process(X_batch)
        manager.wait()  # join a background refit before reading the model
        gen = manager.pipeline.generation
        live_auprc = float(auprc(
            y_eval, manager.pipeline.model.decision_function(X_eval)
        ))
        result.batches.append({
            "phase": phase,
            "drifted": bool(batch.drift is not None and batch.drift.drifted),
            "max_ks": float(batch.drift.max_statistic) if batch.drift else 0.0,
            "generation": int(gen),
            "auprc": live_auprc,
        })
        if gen != gen_before:
            say(f"  hot-swap: generation {gen_before} -> {gen} "
                f"(live AUPRC {live_auprc:.3f})")

    n_batches = 0
    for start in range(0, len(X_warm), batch_rows):
        serve(X_warm[start:start + batch_rows], "warm")
        n_batches += 1
    result.auprc_before_drift = (
        result.batches[-1]["auprc"] if result.batches else 0.0
    )
    say(f"served {n_batches} warm batch(es); "
        f"live AUPRC on shifted eval slice: {result.auprc_before_drift:.3f}")

    drift_batches = 0
    for start in range(0, len(X_drift), batch_rows):
        serve(X_drift[start:start + batch_rows], "drift")
        drift_batches += 1
        if result.batches_to_detection is None:
            confirmed = [e for e in manager.history
                         if e.kind == "drift_confirmed"]
            if confirmed:
                result.batches_to_detection = drift_batches
                result.auprc_at_detection = result.batches[-1]["auprc"]
                say(f"drift confirmed after {drift_batches} drifted batch(es)")

    swap_events = [e for e in manager.history if e.kind == "swap"]
    result.swaps = len(swap_events)
    result.rollbacks = sum(1 for e in manager.history if e.kind == "rollback")
    if swap_events:
        result.detection_to_swap_seconds = swap_events[0].details.get(
            "detection_to_swap_seconds"
        )
    if result.batches_to_detection is not None and not result.auprc_at_detection:
        result.auprc_at_detection = result.auprc_before_drift
    result.auprc_final = result.batches[-1]["auprc"] if result.batches else 0.0
    return result
