"""Drift-triggered continual learning around a live :class:`ScoringPipeline`.

The serving stack detects covariate drift (:mod:`repro.serving.drift`)
but, on its own, a drifted deployment degrades forever. The
:class:`LifecycleManager` closes the loop:

1. **Detect** — every served batch's drift report feeds a debouncer
   (:class:`DriftPolicy.confirm_checks` consecutive drifted batches
   confirm an event; a cooldown after each swap or rollback stops the
   loop from thrashing while the new generation warms up).
2. **Assemble + label** — a refit sample is built from the recent served
   rows (the drifted traffic) plus a seeded reservoir of the original
   training pool (so the refit never forgets the old regime), and a
   budgeted label query is spent on the recent rows ranked by the active
   learning machinery (:func:`repro.core.active.rank_for_labeling`).
3. **Refit** — a candidate model is trained by
   :meth:`~repro.core.model.TargAD.incremental_fit`: the donor's
   selection structure and classifier weights are reused, only a few
   classifier epochs run, checkpointed per cycle.
4. **Gate + swap** — the candidate must reach
   ``min_auprc_ratio`` of the live model's AUPRC on the held-out
   validation slice; if it does, :meth:`ScoringPipeline.swap_model`
   flips it in atomically (zero dropped batches, breaker closed); if it
   does not — or any phase faults — the cycle rolls back and the old
   generation keeps serving.

Every phase is a fault point for the chaos harness
(:class:`repro.resilience.faultinject.SwapFaultInjector`), and every
cycle is recorded as a :class:`LifecycleEvent` plus ``lifecycle.*``
telemetry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.active import Oracle, rank_for_labeling
from repro.core.model import TargAD
from repro.metrics.ranking import auprc
from repro.obs import ensure_telemetry
from repro.resilience.errors import SwapError
from repro.serving.pipeline import AlertBatch, ScoringPipeline

__all__ = ["DriftPolicy", "LifecycleEvent", "LifecycleManager", "RefitRejected"]


class RefitRejected(RuntimeError):
    """The candidate model failed the validation gate; no swap happened."""


@dataclass(frozen=True)
class DriftPolicy:
    """Knobs governing when and how the lifecycle loop refits.

    Attributes
    ----------
    confirm_checks:
        Consecutive drifted batches required to confirm a drift event —
        the debounce against one-off batch noise.
    cooldown_batches:
        Batches after a swap *or* rollback during which drift
        observations are ignored (the fresh monitor needs traffic, and a
        rejected candidate should not be retried instantly).
    label_budget:
        Oracle queries per refit cycle. Budget a cycle could not spend
        (fewer queryable recent rows than the allowance) is not lost:
        it carries over into the next cycle's budget, so a quiet cycle
        amortizes into a bigger query after more drifted traffic has
        accumulated (counter ``lifecycle.labels_carried``).
    label_strategy:
        Ranking used to spend the budget ("uncertainty" / "score" /
        "candidate", see :mod:`repro.core.active`).
    refit_epochs:
        Classifier epochs for the warm-started incremental refit.
    recent_rows:
        Bounded window of recently served (sanitized) rows kept for the
        refit sample and the label query.
    reservoir_rows:
        Seeded subsample of the original training pool mixed into every
        refit sample, so the model keeps covering the old regime.
    min_auprc_ratio:
        Validation gate: candidate AUPRC on the held-out slice must be
        at least this fraction of the live model's. Values > 1 demand
        strict improvement.
    """

    confirm_checks: int = 3
    cooldown_batches: int = 20
    label_budget: int = 20
    label_strategy: str = "uncertainty"
    refit_epochs: int = 5
    recent_rows: int = 2048
    reservoir_rows: int = 2048
    min_auprc_ratio: float = 0.9

    def __post_init__(self):
        if self.confirm_checks < 1:
            raise ValueError("confirm_checks must be >= 1")
        if self.cooldown_batches < 0:
            raise ValueError("cooldown_batches must be >= 0")
        if self.label_budget < 0:
            raise ValueError("label_budget must be >= 0")
        if self.refit_epochs < 1:
            raise ValueError("refit_epochs must be >= 1")
        if self.recent_rows < 1 or self.reservoir_rows < 0:
            raise ValueError("recent_rows must be >= 1 and reservoir_rows >= 0")
        if self.min_auprc_ratio < 0:
            raise ValueError("min_auprc_ratio must be >= 0")


@dataclass
class LifecycleEvent:
    """One entry of the lifecycle history.

    ``kind`` is ``"drift_confirmed"``, ``"swap"`` or ``"rollback"``;
    ``details`` carries kind-specific fields (phase and error for
    rollbacks, AUPRC ratio and detection→swap latency for swaps).
    """

    kind: str
    cycle: int
    generation: int
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cycle": int(self.cycle),
            "generation": int(self.generation),
            **self.details,
        }


class LifecycleManager:
    """Continual-operation controller wrapping a live scoring pipeline.

    Call :meth:`process` instead of ``pipeline.process`` — batches flow
    through unchanged while the manager watches drift reports and, on a
    confirmed event, runs the assemble→label→refit→validate→swap cycle
    (inline by default; in a daemon thread with ``background=True``).

    Parameters
    ----------
    pipeline:
        A calibrated :class:`~repro.serving.pipeline.ScoringPipeline`
        (with its drift monitor enabled).
    X_unlabeled, X_labeled, y_labeled:
        The training pools the live model was fitted on; the reservoir
        and the growing labeled set start from these.
    X_val, y_val:
        Held-out validation slice: threshold recalibration inside the
        swap and the AUPRC validation gate both use it. ``y_val`` is
        binary (1 = target anomaly).
    oracle:
        Labeling oracle with the :data:`repro.core.active.Oracle`
        contract (0 = not a target, 1..m = target class). ``None``
        disables label queries (refits use only the existing labels).
    policy:
        The :class:`DriftPolicy`.
    config:
        Config for candidate models; defaults to the live model's.
    checkpoint_dir:
        When set, each refit cycle checkpoints under
        ``<checkpoint_dir>/cycle-<n>``.
    background:
        Run refit cycles in a daemon thread so serving never blocks on
        training. :meth:`wait` joins an in-flight cycle.
    fault_injector:
        Optional :class:`~repro.resilience.faultinject.SwapFaultInjector`
        firing at every cycle phase (chaos tests).
    seed:
        Seed for the reservoir subsample.
    telemetry:
        Optional registry for the ``lifecycle.*`` series.
    """

    def __init__(
        self,
        pipeline: ScoringPipeline,
        X_unlabeled: np.ndarray,
        X_labeled: np.ndarray,
        y_labeled: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        oracle: Optional[Oracle] = None,
        policy: Optional[DriftPolicy] = None,
        config=None,
        checkpoint_dir=None,
        background: bool = False,
        fault_injector=None,
        seed: int = 0,
        telemetry=None,
    ):
        self.pipeline = pipeline
        self.policy = policy if policy is not None else DriftPolicy()
        self.oracle = oracle
        self.config = config if config is not None else pipeline.model.config
        self.checkpoint_dir = checkpoint_dir
        self.background = bool(background)
        self.injector = fault_injector
        self.telemetry = ensure_telemetry(telemetry)

        rng = np.random.default_rng(seed)
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        n_keep = min(self.policy.reservoir_rows, len(X_unlabeled))
        if n_keep < len(X_unlabeled):
            idx = rng.choice(len(X_unlabeled), size=n_keep, replace=False)
            self._reservoir = X_unlabeled[np.sort(idx)].copy()
        else:
            self._reservoir = X_unlabeled.copy()
        self._X_labeled = np.asarray(X_labeled, dtype=np.float64).copy()
        self._y_labeled = np.asarray(y_labeled, dtype=np.int64).copy()
        self._X_val = np.asarray(X_val, dtype=np.float64)
        self._y_val = np.asarray(y_val, dtype=np.int64).ravel()

        self._recent: Optional[np.ndarray] = None
        self._label_carry = 0
        self._streak = 0
        self._cooldown = 0
        self._cycle = 0
        self._confirmed_at: Optional[float] = None
        self.history: List[LifecycleEvent] = []
        self._refit_lock = threading.Lock()
        self._refit_thread: Optional[threading.Thread] = None

    # -- serving path -----------------------------------------------------
    def process(self, X_batch: np.ndarray) -> AlertBatch:
        """Serve one batch through the pipeline and feed the drift loop."""
        batch = self.pipeline.process(X_batch)
        self._observe(batch, X_batch)
        return batch

    def _observe(self, batch: AlertBatch, X_batch) -> None:
        scored = batch.scored
        if len(scored):
            X = np.asarray(X_batch, dtype=np.float64)
            if X.ndim == 2 and X.shape[1] == self.pipeline._n_features:
                self._remember(X[scored])
        if self._cooldown > 0:
            self._cooldown -= 1
            self._streak = 0
            return
        drifted = batch.drift is not None and batch.drift.drifted
        if not drifted:
            self._streak = 0
            return
        self._streak += 1
        if self._streak < self.policy.confirm_checks:
            return
        self._streak = 0
        if not self._refit_lock.acquire(blocking=False):
            return  # a refit cycle is already running
        self._confirmed_at = time.perf_counter()
        self.telemetry.increment("lifecycle.drift_confirmed")
        self.history.append(LifecycleEvent(
            kind="drift_confirmed",
            cycle=self._cycle + 1,
            generation=self.pipeline.generation,
            details={"max_ks": batch.drift.max_statistic},
        ))
        if self.background:
            self._refit_thread = threading.Thread(
                target=self._run_cycle_locked, name="lifecycle-refit", daemon=True
            )
            self._refit_thread.start()
        else:
            self._run_cycle_locked()

    def _remember(self, X_scored: np.ndarray) -> None:
        if self._recent is None:
            self._recent = X_scored.copy()
        else:
            self._recent = np.vstack([self._recent, X_scored])
        if len(self._recent) > self.policy.recent_rows:
            self._recent = self._recent[-self.policy.recent_rows:]

    def wait(self, timeout: Optional[float] = None) -> None:
        """Join an in-flight background refit cycle (no-op when idle)."""
        thread = self._refit_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    # -- refit cycle ------------------------------------------------------
    def _run_cycle_locked(self) -> None:
        """Run one cycle; the caller has acquired ``_refit_lock``."""
        try:
            self._cycle += 1
            self.refit_now(_cycle_started=True)
        finally:
            self._refit_lock.release()

    def refit_now(self, _cycle_started: bool = False) -> bool:
        """Run one assemble→label→refit→validate→swap cycle immediately.

        Returns ``True`` when a swap happened, ``False`` when the cycle
        rolled back (validation gate, injected fault, or swap failure) —
        in which case the previous generation is still serving. Called
        internally on confirmed drift; callable directly for operator-
        forced refits.
        """
        if not _cycle_started:
            if not self._refit_lock.acquire(blocking=False):
                return False
            try:
                self._cycle += 1
                return self.refit_now(_cycle_started=True)
            finally:
                self._refit_lock.release()

        cycle = self._cycle
        fire = self.injector.fire if self.injector is not None else (lambda p: None)
        if self.injector is not None:
            self.injector.begin_cycle()
        self.telemetry.increment("lifecycle.refits")
        refit_start = time.perf_counter()
        phase = "assemble"
        try:
            fire("assemble")
            X_refit = self._assemble()

            phase = "label"
            fire("label")
            n_queried, n_found = self._query_labels()

            phase = "refit"
            fire("refit")
            candidate = TargAD(self.config, telemetry=(
                self.telemetry if self.telemetry.enabled else None
            ))
            ckpt_dir = None
            if self.checkpoint_dir is not None:
                from pathlib import Path

                ckpt_dir = Path(self.checkpoint_dir) / f"cycle-{cycle}"
            candidate.incremental_fit(
                X_refit, self._X_labeled, self._y_labeled,
                donor=self.pipeline.model,
                epochs=self.policy.refit_epochs,
                checkpoint_dir=ckpt_dir,
            )

            phase = "validate"
            fire("validate")
            ratio, live_auprc, cand_auprc = self._validation_gate(candidate)

            phase = "swap"
            self.pipeline.swap_model(
                candidate, self._X_val, self._y_val,
                X_reference=X_refit,
                fault_points=fire,
            )
        except Exception as exc:
            self._finish_cycle(False, phase, exc)
            return False
        seconds = time.perf_counter() - refit_start
        detection_to_swap = (
            time.perf_counter() - self._confirmed_at
            if self._confirmed_at is not None else seconds
        )
        self._confirmed_at = None
        self.telemetry.increment("lifecycle.swaps")
        self.telemetry.increment("lifecycle.labels_queried", n_queried)
        self.telemetry.increment("lifecycle.labels_found", n_found)
        self.telemetry.set_gauge("lifecycle.generation", float(self.pipeline.generation))
        self.telemetry.observe("lifecycle.refit", seconds)
        details = {
            "auprc_ratio": float(ratio),
            "live_auprc": float(live_auprc),
            "candidate_auprc": float(cand_auprc),
            "labels_queried": int(n_queried),
            "labels_found": int(n_found),
            "labels_carried": int(self._label_carry),
            "refit_seconds": float(seconds),
            "detection_to_swap_seconds": float(detection_to_swap),
        }
        self.history.append(LifecycleEvent(
            kind="swap", cycle=cycle,
            generation=self.pipeline.generation, details=details,
        ))
        self.telemetry.record_event("lifecycle.cycle", outcome="swap",
                                    cycle=cycle, **details)
        self._cooldown = self.policy.cooldown_batches
        return True

    def _finish_cycle(self, swapped: bool, phase: str, exc: Exception) -> None:
        self._confirmed_at = None
        self._cooldown = self.policy.cooldown_batches
        self.telemetry.increment("lifecycle.rollbacks")
        details = {
            "phase": phase,
            "error": type(exc).__name__,
            "detail": str(exc)[:200],
        }
        self.history.append(LifecycleEvent(
            kind="rollback", cycle=self._cycle,
            generation=self.pipeline.generation, details=details,
        ))
        self.telemetry.record_event(
            "lifecycle.cycle", outcome="rollback", cycle=self._cycle, **details
        )

    def _assemble(self) -> np.ndarray:
        """Refit pool: recent served rows + the training reservoir."""
        parts = [p for p in (self._reservoir, self._recent)
                 if p is not None and len(p)]
        if not parts:
            raise RuntimeError(
                "no rows available for a refit sample (empty reservoir and "
                "no served rows remembered yet)"
            )
        return np.vstack(parts)

    def _query_labels(self) -> tuple:
        """Spend the label budget (plus any carry) on the recent traffic.

        The effective budget is ``policy.label_budget`` plus whatever
        earlier cycles could not spend; the unspent remainder of *this*
        cycle becomes the next cycle's carry.
        """
        budget = self.policy.label_budget + self._label_carry
        if self.oracle is None or budget == 0:
            return 0, 0
        if self._recent is None or not len(self._recent):
            self._carry_budget(budget)
            return 0, 0
        ranking = rank_for_labeling(
            self.pipeline.model, self._recent, self.policy.label_strategy
        )
        top = ranking[:budget]
        self._carry_budget(budget - len(top))
        answers = np.asarray(self.oracle(self._recent[top]), dtype=np.int64)
        if answers.shape != (len(top),):
            raise ValueError("oracle must return one label per queried row")
        confirmed = answers > 0
        n_found = int(confirmed.sum())
        if n_found:
            self._X_labeled = np.concatenate(
                [self._X_labeled, self._recent[top[confirmed]]]
            )
            self._y_labeled = np.concatenate(
                [self._y_labeled, answers[confirmed] - 1]
            )
        return int(len(top)), n_found

    def _carry_budget(self, unspent: int) -> None:
        """Roll unspent label budget into the next cycle."""
        unspent = max(int(unspent), 0)
        self._label_carry = unspent
        if unspent:
            self.telemetry.increment("lifecycle.labels_carried", unspent)
        self.telemetry.set_gauge("lifecycle.label_carry", float(unspent))

    def _validation_gate(self, candidate: TargAD) -> tuple:
        """AUPRC gate on the held-out slice; raises :class:`RefitRejected`."""
        if not np.any(self._y_val == 1):
            raise RefitRejected(
                "validation slice has no positive labels; cannot gate the "
                "candidate model"
            )
        live = auprc(self._y_val, self.pipeline.model.decision_function(self._X_val))
        cand = auprc(self._y_val, candidate.decision_function(self._X_val))
        ratio = cand / live if live > 0 else float("inf")
        if ratio < self.policy.min_auprc_ratio:
            raise RefitRejected(
                f"candidate AUPRC {cand:.4f} is {ratio:.2%} of the live "
                f"model's {live:.4f}, below the {self.policy.min_auprc_ratio:.0%} "
                "gate; keeping the previous generation"
            )
        return ratio, live, cand

    # -- reporting --------------------------------------------------------
    def report(self) -> dict:
        """Recovery report: generations, cycles, outcomes, label spend."""
        swaps = [e for e in self.history if e.kind == "swap"]
        rollbacks = [e for e in self.history if e.kind == "rollback"]
        return {
            "generation": int(self.pipeline.generation),
            "cycles": int(self._cycle),
            "swaps": len(swaps),
            "rollbacks": len(rollbacks),
            "labels_queried": int(sum(
                e.details.get("labels_queried", 0) for e in swaps
            )),
            "labels_found": int(sum(
                e.details.get("labels_found", 0) for e in swaps
            )),
            "events": [e.to_dict() for e in self.history],
        }
