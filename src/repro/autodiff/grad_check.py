"""Finite-difference gradient verification utilities.

These helpers back the autodiff test suite: every operator and every model
loss in the repository is validated against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``func`` w.r.t. ``inputs[index]``.

    ``func`` receives plain numpy arrays wrapped into tensors by the caller
    and must return a scalar :class:`Tensor`.
    """
    base = [np.array(arr, dtype=np.float64) for arr in inputs]
    grad = np.zeros_like(base[index])
    it = np.nditer(base[index], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = base[index][idx]

        base[index][idx] = original + epsilon
        plus = float(func(*[Tensor(arr) for arr in base]).data)

        base[index][idx] = original - epsilon
        minus = float(func(*[Tensor(arr) for arr in base]).data)

        base[index][idx] = original
        grad[idx] = (plus - minus) / (2.0 * epsilon)
        it.iternext()
    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``func`` match finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    tensors = [Tensor(np.array(arr, dtype=np.float64), requires_grad=True) for arr in inputs]
    output = func(*tensors)
    if output.data.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    output.backward()

    for i, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {max_err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
