"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the computational substrate for every neural model in the
repository (TargAD's autoencoders and classifier, and all neural baselines).
It implements a small but complete dynamic-graph autodiff engine:

- :class:`~repro.autodiff.tensor.Tensor` — an array with gradient tracking,
- a library of differentiable operations (arithmetic, matmul, reductions,
  activations, softmax/log-softmax, indexing, concatenation),
- :func:`~repro.autodiff.grad_check.numerical_gradient` /
  :func:`~repro.autodiff.grad_check.check_gradients` — finite-difference
  verification utilities used heavily by the test suite.
"""

from repro.autodiff.tensor import Tensor, is_grad_enabled, no_grad
from repro.autodiff.grad_check import check_gradients, numerical_gradient

__all__ = ["Tensor", "check_gradients", "is_grad_enabled", "no_grad", "numerical_gradient"]
