"""A reverse-mode automatic differentiation tensor over numpy arrays.

The engine builds a dynamic computation graph as operations execute; calling
:meth:`Tensor.backward` on a scalar output propagates gradients to every
tensor created with ``requires_grad=True``.

Design notes
------------
- All data is stored as ``float64`` numpy arrays. The models in this
  repository are small (tabular MLPs/autoencoders), so we favour numerical
  robustness and exact gradient checks over memory footprint.
- Broadcasting follows numpy semantics; gradients are "unbroadcast" (summed
  over broadcast axes) on the way back.
- Graph recording can be suspended with the :func:`no_grad` context manager,
  which is used during inference to avoid retaining activations.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction within its scope."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike) -> np.ndarray:
    array = np.asarray(value, dtype=np.float64)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over the axes that numpy broadcasting introduced.

    ``grad`` has the shape of the broadcast result; the returned array has
    the original ``shape`` of the operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload; converted to a float64 numpy array.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node from an op result.

        ``backward`` receives the upstream gradient and is responsible for
        calling :meth:`_accumulate` on each parent that requires a gradient.
        """
        parents = tuple(parents)
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient. Defaults to 1.0, which requires this tensor
            to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the reachable graph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * np.power(self.data, exponent - 1.0))

        return Tensor._make(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape) / count)

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def _extremum(self, axis, keepdims: bool, reducer) -> "Tensor":
        out_data = reducer(self.data, axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(np.float64)
            # Split gradient equally among ties to keep the operator linear.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._extremum(axis, keepdims, np.max)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._extremum(axis, keepdims, np.min)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mean = self.mean(axis=axis, keepdims=True)
        sq = (self - mean) ** 2.0
        return sq.mean(axis=axis, keepdims=keepdims)

    def std(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """Population standard deviation with an epsilon guard at zero."""
        return (self.var(axis=axis, keepdims=keepdims) + eps).sqrt()

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        """Elementwise select; ``condition`` is a non-differentiable mask."""
        condition = np.asarray(condition, dtype=bool)
        a = a if isinstance(a, Tensor) else Tensor(a)
        b = b if isinstance(b, Tensor) else Tensor(b)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * condition)
            if b.requires_grad:
                b._accumulate(grad * ~condition)

        return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise max of two tensors (ties split half/half)."""
        other = self._coerce(other)
        a_wins = self.data > other.data
        tie = self.data == other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (a_wins + 0.5 * tie))
            if other.requires_grad:
                other._accumulate(grad * (~a_wins & ~tie) + grad * 0.5 * tie)

        return Tensor._make(np.maximum(self.data, other.data), (self, other), backward)

    def minimum(self, other: ArrayLike) -> "Tensor":
        """Elementwise min of two tensors (ties split half/half)."""
        other = self._coerce(other)
        a_wins = self.data < other.data
        tie = self.data == other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (a_wins + 0.5 * tie))
            if other.requires_grad:
                other._accumulate(grad * (~a_wins & ~tie) + grad * 0.5 * tie)

        return Tensor._make(np.minimum(self.data, other.data), (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(np.abs(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        factor = np.where(self.data > 0, 1.0, slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * factor)

        return Tensor._make(self.data * factor, (self,), backward)

    def softplus(self) -> "Tensor":
        # log(1 + exp(x)), numerically stabilized.
        out_data = np.logaddexp(0.0, self.data)
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (fused for numerical stability)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - inner))

        return Tensor._make(out_data, (self,), backward)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        sums = np.exp(shifted).sum(axis=axis, keepdims=True)
        out_keep = self.data.max(axis=axis, keepdims=True) + np.log(sums)
        softmax = np.exp(self.data - out_keep)
        out_data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            self._accumulate(g * softmax)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]

        def backward(grad: np.ndarray) -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(grad, i, axis=axis))

        data = np.stack([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, backward)
