"""A reverse-mode automatic differentiation tensor over backend arrays.

The engine builds a dynamic computation graph as operations execute; calling
:meth:`Tensor.backward` on a scalar output propagates gradients to every
tensor created with ``requires_grad=True``.

Design notes
------------
- All array math is routed through :mod:`repro.backend` (``B.*``), the
  pluggable numeric backend, instead of calling numpy directly. The
  reference backend is numpy; the op surface is documented in
  :class:`repro.backend.NumpyBackend`.
- All data is stored in the training dtype of the backend policy
  (``float64``). The models in this repository are small (tabular
  MLPs/autoencoders), so we favour numerical robustness and exact gradient
  checks over memory footprint. Inference that wants ``float32`` should use
  the graph-free compiled path (:func:`repro.nn.inference.compile_inference`)
  rather than this engine.
- Broadcasting follows numpy semantics; gradients are "unbroadcast" (summed
  over broadcast axes) on the way back.
- Graph recording can be suspended with the :func:`no_grad` context manager,
  which is used during inference to avoid retaining activations. The flag is
  **thread-local**, so one serving thread entering/leaving ``no_grad`` can
  never re-enable graph recording under a concurrent trainer (or vice
  versa).
- Backward rules are module-level functions bound into tiny
  :class:`_Backward` records (``__slots__`` objects) instead of per-op
  closures, cutting allocation overhead on the training path.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from repro.backend import ops as B

ArrayLike = Union[B.ndarray, float, int, Sequence]


class _GradMode(threading.local):
    """Per-thread graph-recording flag; reads fall back to the class default."""

    enabled = True


_GRAD_MODE = _GradMode()


def is_grad_enabled() -> bool:
    """Whether ops executed by the *current thread* record the graph."""
    return _GRAD_MODE.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction within its scope.

    The suspension is thread-local: concurrent threads each carry their
    own flag, so an inference thread inside ``no_grad`` cannot observe —
    or clobber — a training thread's recording state.
    """
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def _as_array(value: ArrayLike) -> B.ndarray:
    return B.asarray(value)


def _unbroadcast(grad: B.ndarray, shape: tuple) -> B.ndarray:
    """Sum ``grad`` over the axes that broadcasting introduced.

    ``grad`` has the shape of the broadcast result; the returned array has
    the original ``shape`` of the operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class _Backward:
    """A recorded backward rule plus the saved state it needs.

    One ``__slots__`` record per op replaces the per-op Python closure
    (a function object plus one cell per free variable), cutting
    allocation overhead on the training path; the rules themselves are
    shared module-level functions invoked as ``rule(grad, *state)``.
    """

    __slots__ = ("rule", "state")

    def __init__(self, rule: Callable, state: tuple):
        self.rule = rule
        self.state = state

    def __call__(self, grad: B.ndarray) -> None:
        self.rule(grad, *self.state)


class Tensor:
    """An n-dimensional array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload; converted to an array of the backend's
        training dtype (``float64``).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_MODE.enabled
        self.grad: Optional[B.ndarray] = None
        self._backward: Optional[_Backward] = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> B.ndarray:
        """Return the underlying backend array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: B.ndarray,
        parents: Iterable["Tensor"],
        rule: Callable,
        state: tuple,
    ) -> "Tensor":
        """Create a graph node from an op result.

        ``rule(grad, *state)`` receives the upstream gradient and is
        responsible for calling :meth:`_accumulate` on each parent that
        requires a gradient. The :class:`_Backward` record is only
        allocated when the graph is actually being recorded.
        """
        parents = tuple(parents)
        out = Tensor(data)
        if _GRAD_MODE.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = _Backward(rule, state)
        return out

    def _accumulate(self, grad: B.ndarray) -> None:
        grad = _unbroadcast(B.asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient. Defaults to 1.0, which requires this tensor
            to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = B.ones_like(self.data)
        grad = B.asarray(grad)

        # Topological order over the reachable graph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data + other.data, (self, other), _add_backward, (self, other)
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data - other.data, (self, other), _sub_backward, (self, other)
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data * other.data, (self, other), _mul_backward, (self, other)
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data / other.data, (self, other), _div_backward, (self, other)
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), _neg_backward, (self,))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        return Tensor._make(
            B.power(self.data, exponent), (self,), _pow_backward, (self, exponent)
        )

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            B.matmul(self.data, other.data), (self, other), _matmul_backward, (self, other)
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims),
            (self,),
            _sum_backward,
            (self, axis, keepdims),
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(B.prod([self.data.shape[a] for a in axes]))
        return Tensor._make(
            self.data.mean(axis=axis, keepdims=keepdims),
            (self,),
            _mean_backward,
            (self, axis, keepdims, count),
        )

    def _extremum(self, axis, keepdims: bool, reducer) -> "Tensor":
        out_data = reducer(self.data, axis=axis, keepdims=keepdims)
        return Tensor._make(
            out_data, (self,), _extremum_backward, (self, axis, keepdims, out_data)
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._extremum(axis, keepdims, B.amax)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._extremum(axis, keepdims, B.amin)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mean = self.mean(axis=axis, keepdims=True)
        sq = (self - mean) ** 2.0
        return sq.mean(axis=axis, keepdims=keepdims)

    def std(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """Population standard deviation with an epsilon guard at zero."""
        return (self.var(axis=axis, keepdims=keepdims) + eps).sqrt()

    @staticmethod
    def where(condition: B.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        """Elementwise select; ``condition`` is a non-differentiable mask."""
        condition = B.as_bool(condition)
        a = a if isinstance(a, Tensor) else Tensor(a)
        b = b if isinstance(b, Tensor) else Tensor(b)
        return Tensor._make(
            B.where(condition, a.data, b.data),
            (a, b),
            _where_backward,
            (condition, a, b),
        )

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise max of two tensors (ties split half/half)."""
        other = self._coerce(other)
        a_wins = self.data > other.data
        tie = self.data == other.data
        return Tensor._make(
            B.maximum(self.data, other.data),
            (self, other),
            _pairwise_extremum_backward,
            (self, other, a_wins, tie),
        )

    def minimum(self, other: ArrayLike) -> "Tensor":
        """Elementwise min of two tensors (ties split half/half)."""
        other = self._coerce(other)
        a_wins = self.data < other.data
        tie = self.data == other.data
        return Tensor._make(
            B.minimum(self.data, other.data),
            (self, other),
            _pairwise_extremum_backward,
            (self, other, a_wins, tie),
        )

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = B.exp(self.data)
        return Tensor._make(out_data, (self,), _exp_backward, (self, out_data))

    def log(self) -> "Tensor":
        return Tensor._make(B.log(self.data), (self,), _log_backward, (self,))

    def sqrt(self) -> "Tensor":
        out_data = B.sqrt(self.data)
        return Tensor._make(out_data, (self,), _sqrt_backward, (self, out_data))

    def abs(self) -> "Tensor":
        return Tensor._make(B.abs(self.data), (self,), _abs_backward, (self,))

    def tanh(self) -> "Tensor":
        out_data = B.tanh(self.data)
        return Tensor._make(out_data, (self,), _tanh_backward, (self, out_data))

    def sigmoid(self) -> "Tensor":
        out_data = B.sigmoid(self.data)
        return Tensor._make(out_data, (self,), _sigmoid_backward, (self, out_data))

    def relu(self) -> "Tensor":
        mask = B.as_float(self.data > 0)
        return Tensor._make(self.data * mask, (self,), _masked_backward, (self, mask))

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        factor = B.where(self.data > 0, 1.0, slope)
        return Tensor._make(
            self.data * factor, (self,), _masked_backward, (self, factor)
        )

    def softplus(self) -> "Tensor":
        # log(1 + exp(x)), numerically stabilized; d/dx = sigmoid(x).
        out_data = B.softplus(self.data)
        sig = B.sigmoid(self.data)
        return Tensor._make(out_data, (self,), _masked_backward, (self, sig))

    def clip(self, low: float, high: float) -> "Tensor":
        mask = B.as_float((self.data >= low) & (self.data <= high))
        return Tensor._make(
            B.clip(self.data, low, high), (self,), _masked_backward, (self, mask)
        )

    # ------------------------------------------------------------------
    # Softmax family (fused for numerical stability)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - B.amax(self.data, axis=axis, keepdims=True)
        log_norm = B.log(B.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        softmax = B.exp(out_data)
        return Tensor._make(
            out_data, (self,), _log_softmax_backward, (self, softmax, axis)
        )

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - B.amax(self.data, axis=axis, keepdims=True)
        exp = B.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)
        return Tensor._make(
            out_data, (self,), _softmax_backward, (self, out_data, axis)
        )

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        shifted = self.data - B.amax(self.data, axis=axis, keepdims=True)
        sums = B.exp(shifted).sum(axis=axis, keepdims=True)
        out_keep = B.amax(self.data, axis=axis, keepdims=True) + B.log(sums)
        softmax = B.exp(self.data - out_keep)
        out_data = out_keep if keepdims else B.squeeze(out_keep, axis=axis)
        return Tensor._make(
            out_data, (self,), _logsumexp_backward, (self, softmax, axis, keepdims)
        )

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor._make(
            self.data.reshape(shape), (self,), _reshape_backward, (self,)
        )

    @property
    def T(self) -> "Tensor":
        return Tensor._make(self.data.T, (self,), _transpose_backward, (self,))

    def __getitem__(self, index) -> "Tensor":
        return Tensor._make(
            self.data[index], (self,), _getitem_backward, (self, index)
        )

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        offsets = [0]
        for t in tensors:
            offsets.append(offsets[-1] + t.data.shape[axis])
        data = B.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(
            data, tensors, _concatenate_backward, (tuple(tensors), tuple(offsets), axis)
        )

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = B.stack([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, _stack_backward, (tuple(tensors), axis))


# ----------------------------------------------------------------------
# Backward rules (module-level; bound into _Backward records by the ops)
# ----------------------------------------------------------------------
def _add_backward(grad, a, b):
    if a.requires_grad:
        a._accumulate(grad)
    if b.requires_grad:
        b._accumulate(grad)


def _sub_backward(grad, a, b):
    if a.requires_grad:
        a._accumulate(grad)
    if b.requires_grad:
        b._accumulate(-grad)


def _mul_backward(grad, a, b):
    if a.requires_grad:
        a._accumulate(grad * b.data)
    if b.requires_grad:
        b._accumulate(grad * a.data)


def _div_backward(grad, a, b):
    if a.requires_grad:
        a._accumulate(grad / b.data)
    if b.requires_grad:
        b._accumulate(-grad * a.data / (b.data**2))


def _neg_backward(grad, a):
    if a.requires_grad:
        a._accumulate(-grad)


def _pow_backward(grad, a, exponent):
    if a.requires_grad:
        a._accumulate(grad * exponent * B.power(a.data, exponent - 1.0))


def _matmul_backward(grad, a, b):
    if a.requires_grad:
        if b.data.ndim == 1:
            a._accumulate(
                B.outer(grad, b.data) if grad.ndim == 1 else grad[..., None] * b.data
            )
        else:
            a._accumulate(B.matmul(grad, b.data.swapaxes(-1, -2)))
    if b.requires_grad:
        if a.data.ndim == 1:
            b._accumulate(B.outer(a.data, grad))
        else:
            b._accumulate(B.matmul(a.data.swapaxes(-1, -2), grad))


def _sum_backward(grad, a, axis, keepdims):
    if not a.requires_grad:
        return
    g = grad
    if axis is not None and not keepdims:
        g = B.expand_dims(g, axis=axis)
    a._accumulate(B.broadcast_to(g, a.data.shape))


def _mean_backward(grad, a, axis, keepdims, count):
    if not a.requires_grad:
        return
    g = grad
    if axis is not None and not keepdims:
        g = B.expand_dims(g, axis=axis)
    a._accumulate(B.broadcast_to(g, a.data.shape) / count)


def _extremum_backward(grad, a, axis, keepdims, out_data):
    if not a.requires_grad:
        return
    g = grad
    out = out_data
    if axis is not None and not keepdims:
        g = B.expand_dims(g, axis=axis)
        out = B.expand_dims(out, axis=axis)
    mask = B.as_float(a.data == out)
    # Split gradient equally among ties to keep the operator linear.
    mask /= B.maximum(
        mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0
    )
    a._accumulate(B.broadcast_to(g, a.data.shape) * mask)


def _where_backward(grad, condition, a, b):
    if a.requires_grad:
        a._accumulate(grad * condition)
    if b.requires_grad:
        b._accumulate(grad * ~condition)


def _pairwise_extremum_backward(grad, a, b, a_wins, tie):
    if a.requires_grad:
        a._accumulate(grad * (a_wins + 0.5 * tie))
    if b.requires_grad:
        b._accumulate(grad * (~a_wins & ~tie) + grad * 0.5 * tie)


def _exp_backward(grad, a, out_data):
    if a.requires_grad:
        a._accumulate(grad * out_data)


def _log_backward(grad, a):
    if a.requires_grad:
        a._accumulate(grad / a.data)


def _sqrt_backward(grad, a, out_data):
    if a.requires_grad:
        a._accumulate(grad * 0.5 / out_data)


def _abs_backward(grad, a):
    if a.requires_grad:
        a._accumulate(grad * B.sign(a.data))


def _tanh_backward(grad, a, out_data):
    if a.requires_grad:
        a._accumulate(grad * (1.0 - out_data**2))


def _sigmoid_backward(grad, a, out_data):
    if a.requires_grad:
        a._accumulate(grad * out_data * (1.0 - out_data))


def _masked_backward(grad, a, factor):
    """Shared rule for ops whose derivative is a precomputed factor
    (relu/leaky-relu masks, clip's pass-through mask, softplus' sigmoid)."""
    if a.requires_grad:
        a._accumulate(grad * factor)


def _log_softmax_backward(grad, a, softmax, axis):
    if a.requires_grad:
        a._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))


def _softmax_backward(grad, a, out_data, axis):
    if a.requires_grad:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - inner))


def _logsumexp_backward(grad, a, softmax, axis, keepdims):
    if not a.requires_grad:
        return
    g = grad if keepdims else B.expand_dims(grad, axis=axis)
    a._accumulate(g * softmax)


def _reshape_backward(grad, a):
    if a.requires_grad:
        a._accumulate(grad.reshape(a.data.shape))


def _transpose_backward(grad, a):
    if a.requires_grad:
        a._accumulate(grad.T)


def _getitem_backward(grad, a, index):
    if a.requires_grad:
        full = B.zeros_like(a.data)
        B.index_add(full, index, grad)
        a._accumulate(full)


def _concatenate_backward(grad, tensors, offsets, axis):
    for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
        if tensor.requires_grad:
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])


def _stack_backward(grad, tensors, axis):
    for i, tensor in enumerate(tensors):
        if tensor.requires_grad:
            tensor._accumulate(B.take(grad, i, axis=axis))
