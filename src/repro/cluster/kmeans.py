"""k-means clustering (Lloyd's algorithm with k-means++ initialization).

Used by TargAD's candidate-selection stage to partition the unlabeled pool
into ``k`` behaviour groups, each of which trains its own autoencoder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class KMeans:
    """k-means clustering.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of independent k-means++ restarts; the run with the lowest
        inertia wins.
    max_iter:
        Lloyd iteration cap per restart.
    tol:
        Relative center-shift tolerance for convergence.
    random_state:
        Seed for reproducible seeding and restarts.

    Attributes
    ----------
    cluster_centers_:
        ``(k, D)`` array of final centroids.
    labels_:
        Cluster index per training row.
    inertia_:
        Final within-cluster sum of squared distances.
    n_iter_:
        Iterations used by the best restart.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: Optional[int] = None,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _pairwise_sq_dists(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Squared Euclidean distances, ``(n, k)``."""
        # ||x - c||² = ||x||² - 2 x·c + ||c||²; clip tiny negatives from rounding.
        x_sq = (X**2).sum(axis=1)[:, None]
        c_sq = (centers**2).sum(axis=1)[None, :]
        d = x_sq - 2.0 * X @ centers.T + c_sq
        return np.maximum(d, 0.0)

    def _init_plus_plus(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        first = rng.integers(n)
        centers[0] = X[first]
        closest = self._pairwise_sq_dists(X, centers[:1]).ravel()
        for i in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                # All points coincide with chosen centers; pick uniformly.
                centers[i] = X[rng.integers(n)]
                continue
            probs = closest / total
            idx = rng.choice(n, p=probs)
            centers[i] = X[idx]
            closest = np.minimum(closest, self._pairwise_sq_dists(X, centers[i : i + 1]).ravel())
        return centers

    def _lloyd(self, X: np.ndarray, centers: np.ndarray, rng: np.random.Generator):
        """Run Lloyd iterations from the given centers."""
        for iteration in range(1, self.max_iter + 1):
            dists = self._pairwise_sq_dists(X, centers)
            labels = dists.argmin(axis=1)
            new_centers = centers.copy()
            for j in range(self.n_clusters):
                members = X[labels == j]
                if len(members) == 0:
                    # Re-seed an empty cluster at the point farthest from
                    # its assigned center, a standard fix for degeneracy.
                    farthest = dists[np.arange(len(X)), labels].argmax()
                    new_centers[j] = X[farthest]
                else:
                    new_centers[j] = members.mean(axis=0)
            shift = np.sqrt(((new_centers - centers) ** 2).sum(axis=1)).max()
            centers = new_centers
            if shift <= self.tol:
                break
        dists = self._pairwise_sq_dists(X, centers)
        labels = dists.argmin(axis=1)
        inertia = float(dists[np.arange(len(X)), labels].sum())
        return centers, labels, inertia, iteration

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster the rows of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) < self.n_clusters:
            raise ValueError(f"n_samples={len(X)} < n_clusters={self.n_clusters}")
        rng = np.random.default_rng(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers = self._init_plus_plus(X, rng)
            centers, labels, inertia, n_iter = self._lloyd(X, centers, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign rows of ``X`` to the nearest learned centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        return self._pairwise_sq_dists(X, self.cluster_centers_).argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit and return training labels."""
        return self.fit(X).labels_

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances (not squared) from each row to each centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        return np.sqrt(self._pairwise_sq_dists(X, self.cluster_centers_))
