"""Clustering substrate: k-means with k-means++ seeding and elbow selection."""

from repro.cluster.elbow import select_k_elbow
from repro.cluster.kmeans import KMeans

__all__ = ["KMeans", "select_k_elbow"]
