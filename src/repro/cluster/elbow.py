"""Elbow-method selection of the number of clusters.

The paper selects TargAD's clustering hyperparameter ``k`` with the elbow
method (Section IV-C). We implement the "maximum distance to the chord"
criterion: fit k-means for each candidate ``k``, then pick the ``k`` whose
inertia point is farthest (perpendicularly) from the line joining the first
and last inertia points.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cluster.kmeans import KMeans


def inertia_curve(
    X: np.ndarray,
    k_values: Sequence[int],
    random_state: Optional[int] = None,
    sample_cap: int = 4000,
) -> np.ndarray:
    """Inertia of a k-means fit for each candidate ``k``.

    Large inputs are subsampled to ``sample_cap`` rows — the elbow position
    is a coarse property of the data and is stable under subsampling.
    """
    X = np.asarray(X, dtype=np.float64)
    rng = np.random.default_rng(random_state)
    if len(X) > sample_cap:
        X = X[rng.choice(len(X), size=sample_cap, replace=False)]
    inertias = []
    for k in k_values:
        model = KMeans(n_clusters=k, n_init=2, random_state=random_state)
        model.fit(X)
        inertias.append(model.inertia_)
    return np.asarray(inertias)


def select_k_elbow(
    X: np.ndarray,
    k_min: int = 1,
    k_max: int = 10,
    random_state: Optional[int] = None,
) -> Tuple[int, np.ndarray]:
    """Pick ``k`` by the elbow criterion; returns ``(k, inertia_curve)``."""
    if k_min < 1 or k_max < k_min:
        raise ValueError("need 1 <= k_min <= k_max")
    k_values = list(range(k_min, k_max + 1))
    inertias = inertia_curve(X, k_values, random_state=random_state)
    if len(k_values) <= 2:
        return k_values[0], inertias

    # Perpendicular distance of each (k, inertia) point to the chord from
    # the first point to the last, in normalized coordinates.
    x = np.asarray(k_values, dtype=np.float64)
    y = inertias.astype(np.float64)
    x_norm = (x - x[0]) / max(x[-1] - x[0], 1e-12)
    span = y[0] - y[-1]
    y_norm = (y - y[-1]) / (span if abs(span) > 1e-12 else 1.0)
    # Chord runs from (0, 1) to (1, 0): distance ∝ |x + y - 1|.
    distances = np.abs(x_norm + y_norm - 1.0) / np.sqrt(2.0)
    best = int(np.argmax(distances))
    return k_values[best], inertias
