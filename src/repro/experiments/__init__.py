"""Programmatic experiment suites.

Library-level versions of the paper's evaluation protocols, so users can
re-run any experiment on their own data/configurations without going
through the pytest benchmark harness:

- :mod:`~repro.experiments.convergence` — per-epoch loss and test-AUPRC
  curves (Fig. 3);
- :mod:`~repro.experiments.robustness` — the four Fig. 4 sweeps (unseen
  non-target types, target-class count, labeled budget, contamination);
- :mod:`~repro.experiments.sensitivity` — hyperparameter sweeps and the
  α × contamination matrix (Figs. 6-7);
- :mod:`~repro.experiments.taxonomy_sweep` — cross-family robustness
  over the anomaly-taxonomy injector grid (seen / unseen / cross-target
  scenarios per injector family).
"""

from repro.experiments.convergence import ConvergenceResult, convergence_curves
from repro.experiments.report import generate_report, taxonomy_section, write_taxonomy_report
from repro.experiments.robustness import SweepResult, sweep
from repro.experiments.taxonomy_sweep import (
    TaxonomyScenario,
    TaxonomySweepResult,
    build_taxonomy_grid,
    grid_families,
    taxonomy_sweep,
)
from repro.experiments.sensitivity import (
    alpha_contamination_matrix,
    eta_sweep,
    lambda_grid,
)
from repro.experiments.tables import ablation, triclass_report

__all__ = [
    "ConvergenceResult",
    "SweepResult",
    "TaxonomyScenario",
    "TaxonomySweepResult",
    "ablation",
    "alpha_contamination_matrix",
    "build_taxonomy_grid",
    "convergence_curves",
    "eta_sweep",
    "generate_report",
    "grid_families",
    "lambda_grid",
    "sweep",
    "taxonomy_section",
    "taxonomy_sweep",
    "triclass_report",
    "write_taxonomy_report",
]
