"""Programmatic Table III / Table IV protocols."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval.registry import DATASET_K
from repro.metrics import auprc, auroc, classification_report

ABLATION_VARIANTS: Dict[str, Dict] = {
    "TargAD": dict(use_oe_loss=True, use_re_loss=True),
    "TargAD_-O": dict(use_oe_loss=False, use_re_loss=True),
    "TargAD_-R": dict(use_oe_loss=True, use_re_loss=False),
    "TargAD_-O-R": dict(use_oe_loss=False, use_re_loss=False),
}


def ablation(
    dataset: str = "unsw_nb15",
    variants: Optional[Dict[str, Dict]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Table III protocol: AUPRC/AUROC per loss-ablation variant.

    Returns ``{variant: {"auprc": mean, "auprc_std": std, "auroc": ...}}``.
    """
    variants = variants if variants is not None else ABLATION_VARIANTS
    raw: Dict[str, Dict[str, list]] = {v: {"auprc": [], "auroc": []} for v in variants}
    for seed in seeds:
        kwargs = {} if scale is None else {"scale": scale}
        split = load_dataset(dataset, random_state=seed, **kwargs)
        for name, flags in variants.items():
            model = TargAD(TargADConfig(random_state=seed, k=DATASET_K.get(dataset), **flags))
            model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
            scores = model.decision_function(split.X_test)
            raw[name]["auprc"].append(auprc(split.y_test_binary, scores))
            raw[name]["auroc"].append(auroc(split.y_test_binary, scores))
    return {
        name: {
            "auprc": float(np.mean(vals["auprc"])),
            "auprc_std": float(np.std(vals["auprc"])),
            "auroc": float(np.mean(vals["auroc"])),
            "auroc_std": float(np.std(vals["auroc"])),
        }
        for name, vals in raw.items()
    }


def triclass_report(
    dataset: str = "unsw_nb15",
    strategies: Sequence[str] = ("msp", "es", "ed"),
    seed: int = 0,
    scale: Optional[float] = None,
) -> Dict[str, Dict]:
    """Table IV protocol: per-strategy tri-class classification report."""
    kwargs = {} if scale is None else {"scale": scale}
    split = load_dataset(dataset, random_state=seed, **kwargs)
    model = TargAD(TargADConfig(random_state=seed, k=DATASET_K.get(dataset)))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    reports = {}
    for strategy in strategies:
        pred = model.predict_triclass(split.X_test, strategy=strategy)
        reports[strategy] = classification_report(split.test_kind, pred, labels=[0, 1, 2])
    return reports
