"""Hyperparameter-sensitivity experiments (Figs. 6 and 7)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval.registry import DATASET_K
from repro.metrics import auprc, auroc


def _fit_eval(split, dataset: str, seed: int, **config_kwargs) -> Tuple[float, float]:
    config_kwargs.setdefault("k", DATASET_K.get(dataset))
    model = TargAD(TargADConfig(random_state=seed, **config_kwargs))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    scores = model.decision_function(split.X_test)
    return auprc(split.y_test_binary, scores), auroc(split.y_test_binary, scores)


def eta_sweep(
    dataset: str = "unsw_nb15",
    etas: Sequence[float] = (0.0, 0.01, 0.1, 1.0, 10.0, 100.0),
    seed: int = 0,
    scale: Optional[float] = None,
) -> Dict[float, Tuple[float, float]]:
    """Fig. 7(a): TargAD (AUPRC, AUROC) per η in the autoencoder loss."""
    kwargs = {} if scale is None else {"scale": scale}
    split = load_dataset(dataset, random_state=seed, **kwargs)
    return {eta: _fit_eval(split, dataset, seed, eta=eta) for eta in etas}


def lambda_grid(
    dataset: str = "unsw_nb15",
    lambdas: Sequence[float] = (0.01, 0.1, 1.0, 2.0, 5.0, 10.0),
    seed: int = 0,
    scale: Optional[float] = None,
) -> Dict[Tuple[float, float], Tuple[float, float]]:
    """Fig. 7(b, c): (AUPRC, AUROC) for each (λ1, λ2) pair."""
    kwargs = {} if scale is None else {"scale": scale}
    split = load_dataset(dataset, random_state=seed, **kwargs)
    grid = {}
    for lam1 in lambdas:
        for lam2 in lambdas:
            grid[(lam1, lam2)] = _fit_eval(split, dataset, seed,
                                           lambda1=lam1, lambda2=lam2)
    return grid


def alpha_contamination_matrix(
    dataset: str = "unsw_nb15",
    alphas: Sequence[float] = (0.01, 0.05, 0.10, 0.15, 0.20),
    contaminations: Sequence[float] = (0.01, 0.05, 0.10, 0.15),
    seed: int = 0,
    scale: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig. 6: TargAD (AUPRC, AUROC) matrices over α (rows) × contamination."""
    auprc_matrix = np.zeros((len(alphas), len(contaminations)))
    auroc_matrix = np.zeros_like(auprc_matrix)
    for j, contamination in enumerate(contaminations):
        kwargs = {"contamination": contamination}
        if scale is not None:
            kwargs["scale"] = scale
        split = load_dataset(dataset, random_state=seed, **kwargs)
        for i, alpha in enumerate(alphas):
            p, r = _fit_eval(split, dataset, seed, alpha=alpha)
            auprc_matrix[i, j] = p
            auroc_matrix[i, j] = r
    return auprc_matrix, auroc_matrix
