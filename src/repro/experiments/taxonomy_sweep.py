"""Cross-family robustness sweep over the anomaly taxonomy.

The paper's central robustness claim is that target-prioritization
survives non-target anomalies the supervision never saw. The Table I
generators test that against *one* family mix per dataset; this harness
tests it against anomaly *mechanisms*, by sweeping TargAD and the
baselines across the :mod:`repro.data.taxonomy` injector grid:

- ``<family>/seen`` — the taxonomy family contaminates the unlabeled
  training pool alongside the dataset's own non-targets;
- ``<family>/unseen`` — the taxonomy family is attached to the
  population but held out of training: it appears only in the
  validation/test sets (the paper's Fig. 4(a) unseen-non-target setting,
  generalized to injector families);
- ``target=<a>/nontarget=<b>`` — target and non-target anomalies drawn
  from *different* taxonomy families, the fully cross-family cell.

The output answers "which anomaly families does target-prioritization
survive": one AUPRC/AUROC row per detector per scenario, averaged over
seeds, exportable as deterministic JSON (bit-for-bit stable under a
fixed seed) and rendered to markdown by
:func:`repro.experiments.report.taxonomy_section`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data import load_dataset, taxonomy_family_name
from repro.data.registry import get_generator
from repro.data.taxonomy import INJECTOR_NAMES
from repro.eval.protocol import fit_on_split
from repro.eval.registry import DETECTOR_NAMES, make_detector
from repro.metrics import auprc, auroc
from repro.obs import ensure_telemetry

#: The two predefined grids: ``smoke`` for CI lanes and quick sanity
#: checks, ``full`` for the complete cross-family table.
SMOKE_FAMILIES = ("local", "calculation")
FULL_FAMILIES = tuple(INJECTOR_NAMES)
GRID_NAMES = ("smoke", "full")


@dataclass(frozen=True)
class TaxonomyScenario:
    """One cell column: a label plus ``load_dataset`` overrides."""

    label: str
    overrides: Dict
    unseen: bool = False


def grid_families(grid: str) -> Sequence[str]:
    """Resolve a named grid to its injector-family tuple."""
    if grid == "smoke":
        return SMOKE_FAMILIES
    if grid == "full":
        return FULL_FAMILIES
    raise ValueError(f"unknown grid {grid!r}; choices: {list(GRID_NAMES)}")


def build_taxonomy_grid(
    dataset: str,
    families: Sequence[str],
    include_cross_target: bool = True,
    random_state: int = 0,
) -> List[TaxonomyScenario]:
    """Build the scenario list for one dataset.

    For every injector family the grid contains a *seen* cell (the family
    joins the dataset's own non-targets in the training pool) and an
    *unseen* cell (the family is attached to the population but excluded
    from training, so it first appears in validation/test). When at least
    two families are given, one *cross-target* cell draws the target
    anomalies from the first family and the training non-targets from the
    second — no Table I family is target in that cell.
    """
    if not families:
        raise ValueError("need at least one taxonomy family")
    base_nontargets = list(get_generator(dataset, random_state).nontarget_family_names)
    scenarios: List[TaxonomyScenario] = []
    for family in families:
        tax = taxonomy_family_name(family)
        scenarios.append(TaxonomyScenario(
            label=f"{family}/seen",
            overrides={
                "taxonomy_families": [tax],
                "train_nontarget_families": base_nontargets + [tax],
            },
        ))
        scenarios.append(TaxonomyScenario(
            label=f"{family}/unseen",
            overrides={
                "taxonomy_families": [tax],
                "train_nontarget_families": list(base_nontargets),
            },
            unseen=True,
        ))
    if include_cross_target and len(families) >= 2:
        a, b = families[0], families[1]
        scenarios.append(TaxonomyScenario(
            label=f"target={a}/nontarget={b}",
            overrides={
                "target_families": [taxonomy_family_name(a)],
                "train_nontarget_families": [taxonomy_family_name(b)],
                "taxonomy_families": [taxonomy_family_name(a), taxonomy_family_name(b)],
            },
        ))
    return scenarios


@dataclass
class TaxonomySweepResult:
    """Per-(scenario, detector) AUPRC/AUROC means plus per-seed runs."""

    dataset: str
    scenarios: List[str]
    detectors: List[str]
    unseen: Dict[str, bool] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=list)
    scale: Optional[float] = None
    auprc: Dict[str, Dict[str, float]] = field(default_factory=dict)
    auroc: Dict[str, Dict[str, float]] = field(default_factory=dict)
    auprc_runs: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def series(self, detector: str) -> List[float]:
        """AUPRC of one detector across the scenarios, in order."""
        return [self.auprc[label][detector] for label in self.scenarios]

    def winner(self, scenario: str) -> str:
        """Detector with the best mean AUPRC in one scenario."""
        row = self.auprc[scenario]
        return max(row, key=row.get)

    def survival(self, detector: str = "TargAD") -> Dict[str, bool]:
        """Per-scenario verdict: does ``detector`` keep the best AUPRC?"""
        return {label: self.winner(label) == detector for label in self.scenarios}

    def to_dict(self) -> Dict:
        """Deterministically-ordered plain-dict form (JSON-ready)."""
        return {
            "dataset": self.dataset,
            "scenarios": list(self.scenarios),
            "detectors": list(self.detectors),
            "unseen": {k: self.unseen[k] for k in self.scenarios},
            "seeds": list(self.seeds),
            "scale": self.scale,
            "auprc": {s: {d: self.auprc[s][d] for d in self.detectors}
                      for s in self.scenarios},
            "auroc": {s: {d: self.auroc[s][d] for d in self.detectors}
                      for s in self.scenarios},
            "auprc_runs": {s: {d: self.auprc_runs[s][d] for d in self.detectors}
                           for s in self.scenarios},
        }

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON: same sweep inputs -> byte-identical output."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def taxonomy_sweep(
    dataset: str,
    detectors: Sequence[str] = DETECTOR_NAMES,
    families: Sequence[str] = SMOKE_FAMILIES,
    scenarios: Optional[Sequence[TaxonomyScenario]] = None,
    seeds: Sequence[int] = (0,),
    scale: Optional[float] = None,
    include_cross_target: bool = True,
    detector_kwargs: Optional[Dict] = None,
    telemetry=None,
) -> TaxonomySweepResult:
    """Run every detector on every taxonomy scenario.

    Parameters
    ----------
    dataset:
        Dataset registry name (the base population the injectors act on).
    detectors:
        Detector registry names (default: the full Table II lineup).
    families:
        Injector families for :func:`build_taxonomy_grid`; ignored when
        ``scenarios`` is passed explicitly.
    scenarios:
        Pre-built scenario list overriding the grid builder.
    seeds:
        Independent runs per (scenario, detector); split resample +
        detector re-init per seed.
    scale:
        Split size multiplier forwarded to ``load_dataset``.
    include_cross_target:
        Include the cross-family target cell in the built grid.
    detector_kwargs:
        Extra constructor arguments applied to every detector.
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry`; records one
        ``taxonomy.cell`` timer sample and event per (scenario, detector)
        plus ``taxonomy.cells`` / ``taxonomy.fits`` counters.
    """
    telemetry = ensure_telemetry(telemetry)
    if scenarios is None:
        scenarios = build_taxonomy_grid(
            dataset, families, include_cross_target=include_cross_target,
            random_state=min(seeds, default=0),
        )
    result = TaxonomySweepResult(
        dataset=dataset,
        scenarios=[s.label for s in scenarios],
        detectors=list(detectors),
        unseen={s.label: s.unseen for s in scenarios},
        seeds=list(seeds),
        scale=scale,
    )
    for scenario in scenarios:
        result.auprc[scenario.label] = {}
        result.auroc[scenario.label] = {}
        result.auprc_runs[scenario.label] = {}
        splits = {}
        for seed in seeds:
            kwargs = dict(scenario.overrides)
            if scale is not None:
                kwargs["scale"] = scale
            with telemetry.timer("taxonomy.load_split"):
                splits[seed] = load_dataset(dataset, random_state=seed, **kwargs)
        for name in detectors:
            p_values, r_values = [], []
            with telemetry.timer("taxonomy.cell"):
                for seed in seeds:
                    split = splits[seed]
                    detector = make_detector(name, random_state=seed, dataset=dataset,
                                             **(detector_kwargs or {}))
                    fit_on_split(detector, split)
                    telemetry.increment("taxonomy.fits")
                    scores = detector.decision_function(split.X_test)
                    p_values.append(auprc(split.y_test_binary, scores))
                    r_values.append(auroc(split.y_test_binary, scores))
            result.auprc[scenario.label][name] = float(np.mean(p_values))
            result.auroc[scenario.label][name] = float(np.mean(r_values))
            result.auprc_runs[scenario.label][name] = [float(v) for v in p_values]
            telemetry.increment("taxonomy.cells")
            telemetry.record_event(
                "taxonomy.cell",
                scenario=scenario.label,
                detector=name,
                auprc=result.auprc[scenario.label][name],
                unseen=scenario.unseen,
            )
    return result
