"""Robustness sweeps (the Fig. 4 experiment family).

A *sweep* evaluates a set of detectors across a list of split
configurations, averaging AUPRC over seeds. The four paper panels are
expressible as sweeps:

>>> sweep("unsw_nb15", ["TargAD", "DevNet"],
...       {"3 new": {"train_nontarget_families": ["Reconnaissance"]}},
...       seeds=(0, 1), scale=0.03)            # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data import load_dataset
from repro.eval.protocol import fit_on_split
from repro.eval.registry import make_detector
from repro.metrics import auprc, auroc


@dataclass
class SweepResult:
    """AUPRC/AUROC per (setting, detector), averaged over seeds."""

    dataset: str
    settings: List[str]
    detectors: List[str]
    auprc: Dict[str, Dict[str, float]] = field(default_factory=dict)
    auroc: Dict[str, Dict[str, float]] = field(default_factory=dict)
    auprc_runs: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def series(self, detector: str) -> List[float]:
        """AUPRC of one detector across the settings, in order."""
        return [self.auprc[setting][detector] for setting in self.settings]

    def winner(self, setting: str) -> str:
        """Detector with the best mean AUPRC in a setting."""
        row = self.auprc[setting]
        return max(row, key=row.get)


def sweep(
    dataset: str,
    detectors: Sequence[str],
    settings: Dict[str, Dict],
    seeds: Sequence[int] = (0, 1, 2),
    scale: Optional[float] = None,
    detector_kwargs: Optional[Dict] = None,
) -> SweepResult:
    """Run every detector on every split configuration.

    Parameters
    ----------
    dataset:
        Dataset registry name.
    detectors:
        Detector registry names.
    settings:
        Mapping of setting label -> ``load_dataset`` keyword overrides
        (e.g. ``{"7%": {"contamination": 0.07}}``).
    seeds:
        Independent runs per (setting, detector).
    scale:
        Split size multiplier.
    detector_kwargs:
        Extra constructor arguments for every detector.
    """
    result = SweepResult(dataset=dataset, settings=list(settings), detectors=list(detectors))
    for label, overrides in settings.items():
        result.auprc[label] = {}
        result.auroc[label] = {}
        result.auprc_runs[label] = {}
        for name in detectors:
            p_values, r_values = [], []
            for seed in seeds:
                kwargs = dict(overrides)
                if scale is not None:
                    kwargs["scale"] = scale
                split = load_dataset(dataset, random_state=seed, **kwargs)
                detector = make_detector(name, random_state=seed, dataset=dataset,
                                         **(detector_kwargs or {}))
                fit_on_split(detector, split)
                scores = detector.decision_function(split.X_test)
                p_values.append(auprc(split.y_test_binary, scores))
                r_values.append(auroc(split.y_test_binary, scores))
            result.auprc[label][name] = float(np.mean(p_values))
            result.auroc[label][name] = float(np.mean(r_values))
            result.auprc_runs[label][name] = p_values
    return result
