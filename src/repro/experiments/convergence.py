"""Convergence experiment (Fig. 3): per-epoch loss and test-AUPRC curves."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval.protocol import fit_on_split
from repro.eval.registry import DATASET_K, make_detector
from repro.metrics import auprc


@dataclass
class ConvergenceResult:
    """Loss curve of TargAD and test-AUPRC curves of all requested models."""

    dataset: str
    loss_curve: List[float] = field(default_factory=list)
    auprc_curves: Dict[str, List[float]] = field(default_factory=dict)

    def final_auprc(self) -> Dict[str, float]:
        return {name: curve[-1] for name, curve in self.auprc_curves.items()}

    def epochs_to_reach(self, model: str, fraction: float = 0.95) -> int:
        """First epoch at which ``model`` reaches ``fraction`` of its final AUPRC."""
        curve = self.auprc_curves[model]
        target = fraction * curve[-1]
        for epoch, value in enumerate(curve):
            if value >= target:
                return epoch
        return len(curve) - 1


def convergence_curves(
    dataset: str = "unsw_nb15",
    baselines: Sequence[str] = ("DevNet", "DeepSAD", "PReNet"),
    seed: int = 0,
    scale: Optional[float] = None,
    targad_kwargs: Optional[Dict] = None,
) -> ConvergenceResult:
    """Fit TargAD and baselines, recording test AUPRC after every epoch."""
    kwargs = {} if scale is None else {"scale": scale}
    split = load_dataset(dataset, random_state=seed, **kwargs)
    result = ConvergenceResult(dataset=dataset)

    curve: List[float] = []
    model = TargAD(TargADConfig(random_state=seed, k=DATASET_K.get(dataset),
                                **(targad_kwargs or {})))
    model.fit(
        split.X_unlabeled, split.X_labeled, split.y_labeled,
        epoch_callback=lambda e, m: curve.append(
            auprc(split.y_test_binary, m.decision_function(split.X_test))
        ),
    )
    result.auprc_curves["TargAD"] = curve
    result.loss_curve = list(model.loss_history)

    for name in baselines:
        baseline_curve: List[float] = []
        detector = make_detector(name, random_state=seed, dataset=dataset)
        fit_on_split(
            detector, split,
            epoch_callback=lambda e, d: baseline_curve.append(
                auprc(split.y_test_binary, d.decision_function(split.X_test))
            ),
        )
        result.auprc_curves[name] = baseline_curve
    return result
