"""Markdown experiment-report generation.

``generate_report`` runs a configurable subset of the paper's experiments
and writes a self-contained markdown report (tables + ASCII charts) — the
programmatic counterpart of EXPERIMENTS.md, for users re-running the
evaluation on their own settings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.eval import format_mean_std, run_comparison
from repro.experiments.convergence import convergence_curves
from repro.experiments.robustness import sweep
from repro.viz import line_chart, sparkline


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def comparison_section(
    datasets: Sequence[str],
    detectors: Sequence[str],
    seeds: Sequence[int],
    scale: Optional[float],
) -> str:
    """Table II-style section: AUPRC/AUROC per (dataset, detector)."""
    results = run_comparison(detectors, datasets, seeds=seeds, scale=scale)
    by_dataset: Dict[str, List] = {}
    for res in results:
        by_dataset.setdefault(res.dataset, []).append(res)

    parts = ["## Overall comparison (Table II protocol)\n"]
    for dataset, items in by_dataset.items():
        rows = [
            [res.detector,
             format_mean_std(res.auprc_mean, res.auprc_std),
             format_mean_std(res.auroc_mean, res.auroc_std)]
            for res in items
        ]
        best = max(items, key=lambda r: r.auprc_mean)
        parts.append(f"### {dataset}\n")
        parts.append(_md_table(["Model", "AUPRC", "AUROC"], rows))
        parts.append(f"\nBest AUPRC: **{best.detector}** ({best.auprc_mean:.3f})\n")
    return "\n".join(parts)


def convergence_section(dataset: str, scale: Optional[float]) -> str:
    """Fig. 3-style section with an embedded ASCII chart."""
    result = convergence_curves(dataset, baselines=["DevNet", "DeepSAD"], scale=scale)
    chart = line_chart(result.auprc_curves, width=50, height=10, y_label="AUPRC")
    spark = sparkline(result.loss_curve)
    finals = result.final_auprc()
    rows = [[name, f"{value:.3f}"] for name, value in finals.items()]
    return "\n".join([
        f"## Convergence on {dataset} (Fig. 3 protocol)\n",
        f"TargAD training loss: `{spark}`\n",
        "```", chart, "```", "",
        _md_table(["Model", "final AUPRC"], rows), "",
    ])


def robustness_section(dataset: str, seeds: Sequence[int], scale: Optional[float]) -> str:
    """Fig. 4(d)-style contamination sweep."""
    settings = {f"{int(r * 100)}%": {"contamination": r} for r in (0.03, 0.05, 0.07)}
    result = sweep(dataset, ["DevNet", "TargAD"], settings, seeds=seeds, scale=scale)
    rows = [
        [name, *(f"{result.auprc[s][name]:.3f}" for s in result.settings)]
        for name in result.detectors
    ]
    return "\n".join([
        f"## Contamination robustness on {dataset} (Fig. 4(d) protocol)\n",
        _md_table(["Model", *result.settings], rows), "",
    ])


def taxonomy_section(result) -> str:
    """Cross-family robustness table for a
    :class:`~repro.experiments.taxonomy_sweep.TaxonomySweepResult`.

    One AUPRC column per scenario (unseen-non-target scenarios are marked
    ``*``), one row per detector with the per-scenario best bolded, and a
    survival summary line answering which scenarios TargAD wins.
    """
    def _column(label: str) -> str:
        return f"{label}*" if result.unseen.get(label) else label

    best = {label: max(result.auprc[label].values()) for label in result.scenarios}
    rows = []
    for name in result.detectors:
        cells = []
        for label in result.scenarios:
            value = result.auprc[label][name]
            text = f"{value:.3f}"
            cells.append(f"**{text}**" if value == best[label] else text)
        rows.append([name, *cells])

    parts = [
        f"## Cross-family taxonomy robustness on {result.dataset}\n",
        f"AUPRC over {len(result.seeds)} seed(s); `*` marks scenarios whose "
        "taxonomy family is *unseen* at training time (held out of the "
        "unlabeled pool, present only in validation/test).\n",
        _md_table(["Model", *(_column(s) for s in result.scenarios)], rows),
    ]
    if "TargAD" in result.detectors:
        survived = [s for s, ok in result.survival("TargAD").items() if ok]
        lost = [s for s in result.scenarios if s not in survived]
        parts.append(
            f"\nTargAD keeps the best AUPRC in {len(survived)}/"
            f"{len(result.scenarios)} scenario(s)"
            + (f"; overtaken in: {', '.join(lost)}." if lost else ".")
        )
    return "\n".join(parts) + "\n"


def write_taxonomy_report(result, path: Union[str, Path]) -> Path:
    """Write the taxonomy sweep table as a standalone markdown report."""
    path = Path(path)
    path.write_text("# TargAD taxonomy robustness report\n\n" + taxonomy_section(result))
    return path


def generate_report(
    path: Union[str, Path],
    datasets: Sequence[str] = ("kddcup99",),
    detectors: Sequence[str] = ("iForest", "DevNet", "TargAD"),
    seeds: Sequence[int] = (0,),
    scale: Optional[float] = 0.03,
    include_convergence: bool = True,
    include_robustness: bool = True,
) -> Path:
    """Run the selected experiments and write a markdown report.

    Returns the written path. Runtime scales with ``scale``, the seed
    count, and the detector list — the defaults finish in well under a
    minute.
    """
    sections = [
        "# TargAD experiment report",
        "",
        f"Datasets: {', '.join(datasets)} · detectors: {', '.join(detectors)} · "
        f"{len(seeds)} seed(s) · scale {scale}",
        "",
        comparison_section(datasets, detectors, seeds, scale),
    ]
    if include_convergence:
        sections.append(convergence_section(datasets[0], scale))
    if include_robustness:
        sections.append(robustness_section(datasets[0], seeds, scale))
    path = Path(path)
    path.write_text("\n".join(sections))
    return path
