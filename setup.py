"""Setuptools shim.

This environment is offline: pip's default PEP 517 build isolation tries to
download setuptools/wheel and fails. With a setup.py present, pip can fall
back to a legacy editable install using the locally-installed setuptools
(`use-pep517 = false` is set in the user's pip.conf). All real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
