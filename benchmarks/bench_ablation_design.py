"""Design-choice ablations beyond the paper's tables (DESIGN.md §inventory).

Probes three implementation decisions on UNSW-NB15:

1. **Per-cluster error standardization** in candidate selection (our
   refinement over the paper's raw global sort — see
   ``CandidateSelector.normalize_errors``): measures candidate precision
   and downstream AUPRC with and without it.
2. **k sensitivity**: elbow-selected k vs fixed k ∈ {2, 4, 6} — the paper
   selects k by the elbow method; this quantifies how much the choice
   matters on this data.
3. **SAD autoencoder vs plain autoencoder** in candidate selection
   (η = 1 vs η = 0 wired through the full model), isolating the Eq. 1
   labeled-anomaly term.
"""

import numpy as np
import pytest

from _common import BENCH_SCALE, BENCH_SEEDS
from repro.core import TargAD, TargADConfig
from repro.core.candidate_selection import CandidateSelector
from repro.data import load_dataset
from repro.eval import ResultTable
from repro.metrics import auprc


def test_candidate_normalization(benchmark):
    def run():
        rows = {}
        for label, normalize in (("standardized", True), ("raw global sort", False)):
            precisions = []
            for seed in BENCH_SEEDS:
                split = load_dataset("unsw_nb15", random_state=seed, scale=BENCH_SCALE)
                selector = CandidateSelector(k=4, normalize_errors=normalize,
                                             random_state=seed)
                selection = selector.fit(split.X_unlabeled, split.X_labeled)
                kinds = split.unlabeled_kind[selection.candidate_indices]
                precisions.append(float((kinds > 0).mean()))
            rows[label] = float(np.mean(precisions))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        f"Design ablation — candidate precision (anomaly fraction of D_U^A), "
        f"scale={BENCH_SCALE}",
        columns=["candidate precision"],
        row_header="Error ranking",
    )
    for label, value in rows.items():
        table.add_row(label, {"candidate precision": f"{value:.3f}"})
    table.print()
    assert rows["standardized"] >= rows["raw global sort"] - 0.02


def test_k_sensitivity(benchmark):
    def run():
        rows = {}
        for label, k in (("elbow", None), ("k=2", 2), ("k=4 (true)", 4), ("k=6", 6)):
            values = []
            for seed in BENCH_SEEDS:
                split = load_dataset("unsw_nb15", random_state=seed, scale=BENCH_SCALE)
                model = TargAD(TargADConfig(random_state=seed, k=k))
                model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
                values.append(auprc(split.y_test_binary,
                                    model.decision_function(split.X_test)))
            rows[label] = float(np.mean(values))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        f"Design ablation — AUPRC vs clustering k (scale={BENCH_SCALE})",
        columns=["AUPRC"], row_header="k",
    )
    for label, value in rows.items():
        table.add_row(label, {"AUPRC": f"{value:.3f}"})
    table.print()
    # The method should not collapse for any reasonable k.
    assert min(rows.values()) > 0.3


def test_sad_term_in_selection(benchmark):
    def run():
        rows = {}
        for label, eta in (("SAD (eta=1)", 1.0), ("plain AE (eta=0)", 0.0)):
            values = []
            for seed in BENCH_SEEDS:
                split = load_dataset("unsw_nb15", random_state=seed, scale=BENCH_SCALE)
                model = TargAD(TargADConfig(random_state=seed, k=4, eta=eta))
                model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
                values.append(auprc(split.y_test_binary,
                                    model.decision_function(split.X_test)))
            rows[label] = float(np.mean(values))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        f"Design ablation — Eq. 1 SAD term in candidate selection "
        f"(scale={BENCH_SCALE})",
        columns=["AUPRC"], row_header="Autoencoder loss",
    )
    for label, value in rows.items():
        table.add_row(label, {"AUPRC": f"{value:.3f}"})
    table.print()
    assert all(np.isfinite(list(rows.values())))
