"""Fig. 7 — trade-off parameter sensitivity on UNSW-NB15.

(a) η ∈ {0, 0.01, 0.1, 1, 10, 100} in the autoencoder loss (Eq. 1).
    Expected shape (paper): η = 0 (no semi-supervision in candidate
    selection) collapses performance; any η > 0 is robust.
(b, c) λ1, λ2 ∈ {0.01, 0.1, 1, 2, 5, 10} in the classifier loss (Eq. 8).
    Expected shape (paper): small values work; performance declines once
    λ1 or λ2 exceed 1 (OE over-focus / confidence over-penalty).
"""

import numpy as np
import pytest

from _common import BENCH_SCALE
from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval import ResultTable
from repro.eval.registry import DATASET_K
from repro.metrics import auprc, auroc

ETAS = [0.0, 0.01, 0.1, 1.0, 10.0, 100.0]
LAMBDAS = [0.01, 0.1, 1.0, 2.0, 5.0, 10.0]
SEED = 0


def _fit_score(split, **config_kwargs):
    model = TargAD(TargADConfig(random_state=SEED, k=DATASET_K["unsw_nb15"], **config_kwargs))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    scores = model.decision_function(split.X_test)
    return auprc(split.y_test_binary, scores), auroc(split.y_test_binary, scores)


def run_eta_sweep():
    split = load_dataset("unsw_nb15", random_state=SEED, scale=BENCH_SCALE)
    return {eta: _fit_score(split, eta=eta) for eta in ETAS}


def run_lambda_grid():
    split = load_dataset("unsw_nb15", random_state=SEED, scale=BENCH_SCALE)
    grid = {}
    for lam1 in LAMBDAS:
        for lam2 in LAMBDAS:
            grid[(lam1, lam2)] = _fit_score(split, lambda1=lam1, lambda2=lam2)
    return grid


def test_fig7a_eta(benchmark):
    from repro.viz import bar_chart

    results = benchmark.pedantic(run_eta_sweep, rounds=1, iterations=1)
    print("\n" + bar_chart(
        [str(eta) for eta in results],
        [p for p, _ in results.values()],
        title="Fig. 7(a) — AUPRC vs η",
    ))
    table = ResultTable(
        f"Fig. 7(a) — TargAD vs η in L_AE (scale={BENCH_SCALE})",
        columns=["AUPRC", "AUROC"],
        row_header="eta",
    )
    for eta, (p, r) in results.items():
        table.add_row(str(eta), {"AUPRC": f"{p:.3f}", "AUROC": f"{r:.3f}"})
    table.print()
    print("Paper shape: η=0 deteriorates; robust for η > 0.")

    nonzero = [results[e][0] for e in ETAS if e > 0]
    # Shape: η=0 is not better than the typical supervised setting.
    assert results[0.0][0] <= max(nonzero) + 0.02


def test_fig7bc_lambdas(benchmark):
    import numpy as np

    from repro.viz import heatmap

    grid = benchmark.pedantic(run_lambda_grid, rounds=1, iterations=1)
    matrix = np.array([[grid[(l1, l2)][0] for l2 in LAMBDAS] for l1 in LAMBDAS])
    print("\n" + heatmap(
        matrix,
        [f"λ1={l1}" for l1 in LAMBDAS],
        [f"λ2={l2}" for l2 in LAMBDAS],
        title="Fig. 7(b) — AUPRC heatmap",
    ))
    for title, idx in (("Fig. 7(b) — AUPRC", 0), ("Fig. 7(c) — AUROC", 1)):
        table = ResultTable(
            f"{title}: λ1 (rows) × λ2 (cols), scale={BENCH_SCALE}",
            columns=[f"λ2={l2}" for l2 in LAMBDAS],
            row_header="λ1",
        )
        for lam1 in LAMBDAS:
            table.add_row(f"{lam1}", {
                f"λ2={l2}": f"{grid[(lam1, l2)][idx]:.3f}" for l2 in LAMBDAS
            })
        table.print()
    print("Paper shape: small λ1/λ2 best; decline once either exceeds 1.")

    small = grid[(0.1, 1.0)][0]  # the paper's chosen operating point
    large = grid[(10.0, 10.0)][0]
    assert small >= large - 0.02
