"""Table II — overall AUPRC/AUROC of TargAD and all 11 baselines.

One benchmark per dataset. Each prints the paper-style table
(mean ± std over ``REPRO_BENCH_SEEDS`` runs) with the paper's reference
numbers alongside. Expected shape (paper): unsupervised (iForest, REPEN)
≪ semi-supervised; TargAD first in AUPRC on every dataset.
"""

import pytest

from _common import BENCH_SCALE, BENCH_SEEDS, PAPER_TABLE2_AUPRC, PAPER_TABLE2_AUROC
from repro.eval import DETECTOR_NAMES, ResultTable, evaluate_detector, format_mean_std


def run_dataset(dataset: str):
    results = {}
    for name in DETECTOR_NAMES:
        results[name] = evaluate_detector(name, dataset, seeds=BENCH_SEEDS, scale=BENCH_SCALE)
    return results


def report(dataset: str, results) -> None:
    table = ResultTable(
        f"Table II — {dataset} (scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds)",
        columns=["AUPRC (ours)", "AUPRC (paper)", "AUROC (ours)", "AUROC (paper)"],
    )
    for name, res in results.items():
        table.add_row(
            name,
            {
                "AUPRC (ours)": format_mean_std(res.auprc_mean, res.auprc_std),
                "AUPRC (paper)": f"{PAPER_TABLE2_AUPRC[name][dataset]:.3f}",
                "AUROC (ours)": format_mean_std(res.auroc_mean, res.auroc_std),
                "AUROC (paper)": f"{PAPER_TABLE2_AUROC[name][dataset]:.3f}",
            },
        )
    table.print()

    best = max(results.items(), key=lambda kv: kv[1].auprc_mean)
    print(f"Best AUPRC on {dataset}: {best[0]} ({best[1].auprc_mean:.3f}) — paper: TargAD")


@pytest.mark.parametrize("dataset", ["unsw_nb15", "kddcup99", "nsl_kdd", "sqb"])
def test_table2(benchmark, dataset):
    results = benchmark.pedantic(run_dataset, args=(dataset,), rounds=1, iterations=1)
    report(dataset, results)
    targad = results["TargAD"].auprc_mean
    best_baseline = max(
        res.auprc_mean for name, res in results.items() if name != "TargAD"
    )
    # Shape assertion: TargAD leads (small tolerance for seed noise).
    assert targad >= best_baseline - 0.05, (
        f"TargAD AUPRC {targad:.3f} should lead baselines (best {best_baseline:.3f})"
    )
