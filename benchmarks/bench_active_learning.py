"""Extension — active label acquisition (not in the paper).

The paper assumes a fixed labeled set; operationally, labels arrive from
analysts reviewing queued alerts. This bench compares acquisition
strategies for spending a fixed labeling budget on the UNSW-NB15 analog:
``score`` (verify the top of the queue), ``uncertainty`` (query near the
decision boundary), ``candidate`` (confirm high-weight OE candidates), and
a random baseline. Reported: targets found with the budget and final test
AUPRC after refitting with the acquired labels.
"""

import numpy as np
import pytest

from _common import BENCH_SCALE
from repro.core import TargADConfig
from repro.core.active import ActiveTargAD
from repro.data import load_dataset
from repro.eval import ResultTable
from repro.eval.registry import DATASET_K
from repro.metrics import auprc

SEED = 0
BATCH = 20
ROUNDS = 3


def make_oracle(split):
    pool_X = split.X_unlabeled
    kind = split.unlabeled_kind
    family = split.unlabeled_family
    fam_to_class = {f: i + 1 for i, f in enumerate(split.target_families)}

    def oracle(X_queried):
        labels = np.zeros(len(X_queried), dtype=np.int64)
        for i, row in enumerate(X_queried):
            j = np.flatnonzero((pool_X == row).all(axis=1))[0]
            if kind[j] == 1:
                labels[i] = fam_to_class[family[j]]
        return labels

    return oracle


def run_strategies():
    split = load_dataset("unsw_nb15", random_state=SEED, scale=BENCH_SCALE)
    oracle = make_oracle(split)
    config = TargADConfig(random_state=SEED, k=DATASET_K["unsw_nb15"])

    results = {}
    for strategy in ("score", "uncertainty", "candidate"):
        active = ActiveTargAD(config, strategy=strategy, batch_size=BATCH)
        model = active.run(split.X_unlabeled, split.X_labeled, split.y_labeled,
                           oracle, n_rounds=ROUNDS)
        results[strategy] = {
            "found": active.total_targets_found,
            "auprc": auprc(split.y_test_binary, model.decision_function(split.X_test)),
        }

    # Random baseline: same budget, uniform queries.
    rng = np.random.default_rng(SEED)
    queried = rng.choice(len(split.X_unlabeled), size=BATCH * ROUNDS, replace=False)
    labels = oracle(split.X_unlabeled[queried])
    found = int((labels > 0).sum())
    confirmed = queried[labels > 0]
    X_l = np.concatenate([split.X_labeled, split.X_unlabeled[confirmed]])
    y_l = np.concatenate([split.y_labeled, labels[labels > 0] - 1])
    keep = np.ones(len(split.X_unlabeled), dtype=bool)
    keep[confirmed] = False
    from repro.core import TargAD

    model = TargAD(config)
    model.fit(split.X_unlabeled[keep], X_l, y_l)
    results["random"] = {
        "found": found,
        "auprc": auprc(split.y_test_binary, model.decision_function(split.X_test)),
    }
    base_rate = float((split.unlabeled_kind == 1).mean())
    return results, base_rate


def test_active_learning_strategies(benchmark):
    results, base_rate = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    table = ResultTable(
        f"Extension — active acquisition, budget {BATCH * ROUNDS} queries "
        f"(scale={BENCH_SCALE}; pool target rate {base_rate:.1%})",
        columns=["targets found", "final AUPRC"],
        row_header="Strategy",
    )
    for name, row in results.items():
        table.add_row(name, {
            "targets found": str(row["found"]),
            "final AUPRC": f"{row['auprc']:.3f}",
        })
    table.print()

    # Shape: the informed strategies should find targets at well above the
    # pool base rate, and at least one should beat random acquisition.
    budget = BATCH * ROUNDS
    best_informed = max(results[s]["found"] for s in ("score", "uncertainty", "candidate"))
    assert best_informed / budget > 2 * base_rate
    assert best_informed >= results["random"]["found"]
