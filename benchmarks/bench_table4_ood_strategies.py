"""Table IV — tri-class identification with MSP / ES / ED on UNSW-NB15.

For each OOD strategy, TargAD's Section III-C rule splits the test set
into normal / target / non-target; we report per-class precision, recall,
F1 and the macro / weighted averages. Expected shape (paper): ED beats MSP
and ES on the macro and weighted averages; non-target is the hardest
class for every strategy.
"""

import numpy as np
import pytest

from _common import BENCH_SCALE, BENCH_SEEDS, PAPER_TABLE4
from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.data.schema import KIND_NAMES
from repro.eval import ResultTable
from repro.eval.registry import DATASET_K
from repro.metrics import classification_report

STRATEGIES = ["msp", "es", "ed"]
ROWS = ["normal", "target", "non-target", "macro avg", "weighted avg"]


def run_table4():
    # reports[strategy][row][metric] -> list over seeds
    reports = {s: {row: {m: [] for m in ("precision", "recall", "f1")} for row in ROWS}
               for s in STRATEGIES}
    for seed in BENCH_SEEDS:
        split = load_dataset("unsw_nb15", random_state=seed, scale=BENCH_SCALE)
        model = TargAD(TargADConfig(random_state=seed, k=DATASET_K["unsw_nb15"]))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        for strategy in STRATEGIES:
            pred = model.predict_triclass(split.X_test, strategy=strategy)
            rep = classification_report(split.test_kind, pred, labels=[0, 1, 2])
            for code, name in KIND_NAMES.items():
                for metric in ("precision", "recall", "f1"):
                    reports[strategy][name][metric].append(rep[code][metric])
            for avg in ("macro avg", "weighted avg"):
                for metric in ("precision", "recall", "f1"):
                    reports[strategy][avg][metric].append(rep[avg][metric])
    return reports


def test_table4_ood_strategies(benchmark):
    reports = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    for strategy in STRATEGIES:
        table = ResultTable(
            f"Table IV — TargAD tri-class with {strategy.upper()} "
            f"(UNSW-NB15, scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds)",
            columns=["Precision", "Recall", "F1", "F1 (paper)"],
            row_header="Class",
        )
        for row in ROWS:
            vals = reports[strategy][row]
            table.add_row(row, {
                "Precision": f"{np.mean(vals['precision']):.3f}",
                "Recall": f"{np.mean(vals['recall']):.3f}",
                "F1": f"{np.mean(vals['f1']):.3f}",
                "F1 (paper)": f"{PAPER_TABLE4[strategy.upper()][row]['f1']:.3f}",
            })
        table.print()

    macro = {s: np.mean(reports[s]["macro avg"]["f1"]) for s in STRATEGIES}
    weighted = {s: np.mean(reports[s]["weighted avg"]["f1"]) for s in STRATEGIES}
    print(f"Macro-F1: {macro} | Weighted-F1: {weighted} — paper: ED best on both")
    # Shape: ED at least matches the other two on macro F1 (small tolerance).
    assert macro["ed"] >= max(macro["msp"], macro["es"]) - 0.05
