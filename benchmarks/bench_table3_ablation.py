"""Table III — ablation of the classifier loss terms on UNSW-NB15.

Variants: full TargAD, TargAD_-O (no L_OE), TargAD_-R (no L_RE), and
TargAD_-O-R (plain L_CE). Expected shape (paper): full TargAD best on both
metrics (by 2-4% AUPRC); TargAD_-O-R weakest. Two extension rows probe the
design choices the paper argues for in prose: TargAD_origOE (the original
flat OE pseudo-label) and TargAD_-W (no Eq. 4/5 weighting).
"""

import numpy as np
import pytest

from _common import BENCH_SCALE, BENCH_SEEDS, PAPER_TABLE3_NOTE
from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval import ResultTable, format_mean_std
from repro.eval.registry import DATASET_K
from repro.metrics import auprc, auroc

VARIANTS = {
    "TargAD": dict(use_oe_loss=True, use_re_loss=True),
    "TargAD_-O": dict(use_oe_loss=False, use_re_loss=True),
    "TargAD_-R": dict(use_oe_loss=True, use_re_loss=False),
    "TargAD_-O-R": dict(use_oe_loss=False, use_re_loss=False),
    # Extensions beyond the paper's Table III: the design alternatives the
    # text argues against — the original flat OE label (Section III-B2) and
    # disabling the Eq. 4/5 weight mechanism (RQ4).
    "TargAD_origOE": dict(oe_label_style="uniform"),
    "TargAD_-W": dict(use_weighting=False),
}


def run_ablation():
    results = {name: {"auprc": [], "auroc": []} for name in VARIANTS}
    for seed in BENCH_SEEDS:
        split = load_dataset("unsw_nb15", random_state=seed, scale=BENCH_SCALE)
        for name, flags in VARIANTS.items():
            model = TargAD(TargADConfig(random_state=seed, k=DATASET_K["unsw_nb15"], **flags))
            model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
            scores = model.decision_function(split.X_test)
            results[name]["auprc"].append(auprc(split.y_test_binary, scores))
            results[name]["auroc"].append(auroc(split.y_test_binary, scores))
    return results


def test_table3_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = ResultTable(
        f"Table III — ablation on UNSW-NB15 (scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds)",
        columns=["AUPRC", "AUROC"],
    )
    for name, vals in results.items():
        table.add_row(name, {
            "AUPRC": format_mean_std(float(np.mean(vals["auprc"])), float(np.std(vals["auprc"]))),
            "AUROC": format_mean_std(float(np.mean(vals["auroc"])), float(np.std(vals["auroc"]))),
        })
    table.print()
    print(PAPER_TABLE3_NOTE)

    full = np.mean(results["TargAD"]["auprc"])
    bare = np.mean(results["TargAD_-O-R"]["auprc"])
    # Shape: the full loss helps over plain cross-entropy.
    assert full >= bare - 0.02, f"full TargAD ({full:.3f}) should beat -O-R ({bare:.3f})"
