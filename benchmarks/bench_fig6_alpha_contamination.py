"""Fig. 6 — sensitivity to the selection threshold α vs the true
contamination rate (UNSW-NB15).

A matrix sweep α ∈ {1, 5, 10, 15, 20}% × contamination ∈ {1, 5, 10, 15}%.
Expected shape (paper): performance is robust while α ≤ contamination and
degrades once α exceeds the true contamination (too many real normals get
the OE pseudo-label).
"""

import numpy as np
import pytest

from _common import BENCH_SCALE
from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval import ResultTable
from repro.eval.registry import DATASET_K
from repro.metrics import auprc, auroc

ALPHAS = [0.01, 0.05, 0.10, 0.15, 0.20]
CONTAMINATIONS = [0.01, 0.05, 0.10, 0.15]
SEED = 0


def run_matrix():
    auprc_matrix = np.zeros((len(ALPHAS), len(CONTAMINATIONS)))
    auroc_matrix = np.zeros_like(auprc_matrix)
    for j, contamination in enumerate(CONTAMINATIONS):
        split = load_dataset("unsw_nb15", random_state=SEED, scale=BENCH_SCALE,
                             contamination=contamination)
        for i, alpha in enumerate(ALPHAS):
            model = TargAD(TargADConfig(random_state=SEED, alpha=alpha,
                                        k=DATASET_K["unsw_nb15"]))
            model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
            scores = model.decision_function(split.X_test)
            auprc_matrix[i, j] = auprc(split.y_test_binary, scores)
            auroc_matrix[i, j] = auroc(split.y_test_binary, scores)
    return auprc_matrix, auroc_matrix


def test_fig6_alpha_vs_contamination(benchmark):
    from repro.viz import heatmap

    auprc_matrix, auroc_matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print("\n" + heatmap(
        auprc_matrix,
        [f"α={int(a*100)}%" for a in ALPHAS],
        [f"c={int(c*100)}%" for c in CONTAMINATIONS],
        title="Fig. 6(a) — AUPRC heatmap",
    ))
    for title, matrix in (("AUPRC", auprc_matrix), ("AUROC", auroc_matrix)):
        table = ResultTable(
            f"Fig. 6 — TargAD {title}: α (rows) × contamination (cols), scale={BENCH_SCALE}",
            columns=[f"c={int(c*100)}%" for c in CONTAMINATIONS],
            row_header="alpha",
        )
        for i, alpha in enumerate(ALPHAS):
            table.add_row(f"{int(alpha*100)}%", {
                f"c={int(c*100)}%": f"{matrix[i, j]:.3f}"
                for j, c in enumerate(CONTAMINATIONS)
            })
        table.print()
    print("Paper shape: robust while α ≤ contamination; degrades when α exceeds it.")

    # Shape assertion: at low contamination (1%), a huge α (20%) hurts
    # relative to a matched α (1%).
    assert auprc_matrix[0, 0] >= auprc_matrix[-1, 0] - 0.02
