"""Section III-B4 — model-complexity verification.

The paper derives O(ND + N log N) time for candidate selection and O(ND)
for classifier training. This bench measures TargAD's wall-clock fit time
while doubling N (rows) and D (features) independently on the synthetic
population, and checks the growth is near-linear (well below quadratic).
"""

import time

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator
from repro.eval import ResultTable

FIT_KWARGS = dict(k=2, ae_epochs=5, clf_epochs=5, random_state=0)


def make_split(n_unlabeled: int, n_numeric: int):
    generator = SyntheticTabularGenerator(
        n_numeric=n_numeric,
        normal_groups=[
            NormalGroupSpec("a", weight=0.5, signature_size=4),
            NormalGroupSpec("b", weight=0.5, signature_size=4),
        ],
        anomaly_families=[
            AnomalyFamilySpec("t", is_target=True, n_affected=4, shift=5.0),
            AnomalyFamilySpec("o", is_target=False, n_affected=4, shift=5.0),
        ],
        random_state=0,
    )
    spec = TableISpec(
        name="scaling", n_labeled=30, n_unlabeled=n_unlabeled,
        val_counts=(50, 5, 5), test_counts=(50, 5, 5), contamination=0.05,
    )
    return build_split(generator, spec, scale=1.0, random_state=0)


def time_fit(n_unlabeled: int, n_numeric: int) -> float:
    split = make_split(n_unlabeled, n_numeric)
    model = TargAD(TargADConfig(**FIT_KWARGS))
    start = time.perf_counter()
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return time.perf_counter() - start


def test_scaling_in_n(benchmark):
    sizes = [1000, 2000, 4000]

    def run():
        return {n: time_fit(n, 16) for n in sizes}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable("Fit time vs N (D=16)", columns=["seconds"], row_header="N")
    for n, t in times.items():
        table.add_row(str(n), {"seconds": f"{t:.2f}"})
    table.print()
    # Doubling N twice (4x) should cost well under 16x (quadratic).
    ratio = times[4000] / max(times[1000], 1e-9)
    print(f"t(4N)/t(N) = {ratio:.1f} (linear=4, quadratic=16)")
    assert ratio < 10.0


def test_scaling_in_d(benchmark):
    dims = [16, 64, 256]

    def run():
        return {d: time_fit(1500, d) for d in dims}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable("Fit time vs D (N=1500)", columns=["seconds"], row_header="D")
    for d, t in times.items():
        table.add_row(str(d), {"seconds": f"{t:.2f}"})
    table.print()
    ratio = times[256] / max(times[16], 1e-9)
    print(f"t(16D)/t(D) = {ratio:.1f} (linear=16, quadratic=256)")
    assert ratio < 60.0
