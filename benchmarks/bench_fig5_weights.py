"""Fig. 5 — effect of the weight-updating strategy (Eqs. 4-5) on UNSW-NB15.

(a) Mean weight per true instance type (inaccurately-reconstructed normal /
    target / non-target) among the non-target anomaly candidates, per
    epoch. Expected shape: normals start highest (Eq. 5 favours low
    reconstruction error), then drop sharply once Eq. 4 kicks in; by the
    later epochs non-target anomalies carry the highest mean weight.
(b) Final-epoch weight distributions per type (printed as histograms).
    Expected shape: non-targets concentrate in the high-weight region.
"""

import numpy as np
import pytest

from _common import BENCH_SCALE
from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.data.schema import KIND_NAMES
from repro.eval import ResultTable
from repro.eval.registry import DATASET_K

SEED = 0


def run_weights():
    split = load_dataset("unsw_nb15", random_state=SEED, scale=BENCH_SCALE)
    model = TargAD(TargADConfig(random_state=SEED, k=DATASET_K["unsw_nb15"]))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    candidate_kinds = split.unlabeled_kind[model.selection_.candidate_indices]
    return model.weight_history, candidate_kinds


def test_fig5_weight_dynamics(benchmark):
    history, kinds = benchmark.pedantic(run_weights, rounds=1, iterations=1)
    epochs = len(history)
    picks = sorted({0, 1, 2, epochs // 4, epochs // 2, epochs - 1})

    table = ResultTable(
        f"Fig. 5(a) — mean candidate weight by true type (scale={BENCH_SCALE})",
        columns=[f"ep{e}" for e in picks],
        row_header="True type",
    )
    means = {}
    for code, name in KIND_NAMES.items():
        mask = kinds == code
        if not mask.any():
            continue
        means[name] = [float(history[e][mask].mean()) for e in picks]
        table.add_row(name, {f"ep{e}": f"{v:.3f}" for e, v in zip(picks, means[name])})
    table.print()
    print("Paper shape: normals start highest (Eq. 5) then collapse; "
          "non-targets overtake and stay highest.")

    print(f"\nFig. 5(b) — final-epoch weight distribution:")
    from repro.viz import histogram

    final = history[-1]
    for code, name in KIND_NAMES.items():
        mask = kinds == code
        if not mask.any():
            continue
        print(histogram(final[mask], bins=10, value_range=(0.0, 1.0),
                        title=f"  weight density — {name}", width=24))
    print("Paper shape: the non-target density concentrates in the high-weight bins.")

    # Shape assertions. (1) Eq. 5 initialization favours normals (low
    # reconstruction error) over non-targets. (2) The Eq. 4 updates move
    # weight onto non-targets and strip it from targets, which is the
    # mechanism's purpose (protecting hidden targets from the OE pull).
    # (3) Non-targets end above targets. Note: in the paper normals also
    # end lowest; in our synthetic analog the few normals that leak into
    # the candidate set are boundary instances the classifier stays
    # uncertain about, so their weight falls more slowly — recorded as a
    # partial-reproduction note in EXPERIMENTS.md.
    assert means["normal"][0] >= means["non-target"][0] - 0.05
    assert means["non-target"][-1] >= means["non-target"][0] - 0.2
    if "target" in means:
        assert means["target"][-1] < means["target"][0]
        assert means["non-target"][-1] > means["target"][-1]
