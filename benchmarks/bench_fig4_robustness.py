"""Fig. 4 — robustness analysis on UNSW-NB15 (four panels).

(a) Unseen non-target anomaly types: train with 4/3/2/1 non-target
    families, test always contains all 4. Expected shape: TargAD's AUPRC
    stays roughly flat (~top of the pack); baselines decline as more test
    families become novel.
(b) Number of target classes m = 1..6 (non-target families 6..1).
    Expected shape: TargAD leads at every m; m = 1 is the easiest setting.
(c) Labeled anomalies per class in {20, 60, 100}. Expected shape: all
    models improve with more labels; TargAD leads throughout.
(d) Contamination rate in {3, 5, 7, 9}%. Expected shape: TargAD leads and
    stays stable; mid-range rates (5-7%) are the sweet spot.
"""

import numpy as np
import pytest

from _common import BENCH_SCALE, BENCH_SEEDS, fig4_models
from repro.eval import ResultTable, make_detector
from repro.eval.protocol import fit_on_split
from repro.data import load_dataset
from repro.metrics import auprc

MODELS = fig4_models()

# UNSW family inventory (order matters for the sweeps below).
TARGETS = ["Generic", "Backdoor", "DoS"]
NONTARGETS = ["Fuzzers", "Analysis", "Exploits", "Reconnaissance"]
ALL_FAMILIES = TARGETS + NONTARGETS


def run_setting(split_kwargs, detector_kwargs=None):
    """Mean AUPRC per model over the bench seeds for one configuration."""
    out = {}
    for name in MODELS:
        values = []
        for seed in BENCH_SEEDS:
            split = load_dataset("unsw_nb15", random_state=seed, scale=BENCH_SCALE,
                                 **split_kwargs)
            det = make_detector(name, random_state=seed, dataset="unsw_nb15",
                                **(detector_kwargs or {}))
            fit_on_split(det, split)
            values.append(auprc(split.y_test_binary, det.decision_function(split.X_test)))
        out[name] = float(np.mean(values))
    return out


def print_panel(title, columns, rows):
    from repro.viz import line_chart

    table = ResultTable(title, columns=columns)
    for model in MODELS:
        table.add_row(model, {col: f"{rows[col][model]:.3f}" for col in columns})
    table.print()
    series = {model: [rows[col][model] for col in columns] for model in MODELS}
    print(line_chart(series, title=f"{title} — series view", y_label="AUPRC",
                     width=48, height=10))


def test_fig4a_new_nontarget_types(benchmark):
    """Panel (a): restrict training non-target families; test keeps all 4."""
    settings = {
        "0 new": NONTARGETS,
        "1 new": ["Fuzzers", "Analysis", "Reconnaissance"],
        "2 new": ["Analysis", "Reconnaissance"],
        "3 new": ["Reconnaissance"],
    }

    def run():
        return {
            label: run_setting({"train_nontarget_families": fams})
            for label, fams in settings.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_panel(
        f"Fig. 4(a) — AUPRC vs number of NEW non-target types in testing "
        f"(scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds)",
        list(settings), rows,
    )
    print("Paper shape: TargAD flat (~0.8); baselines below 0.72 and declining.")
    targad = [rows[c]["TargAD"] for c in settings]
    spread = max(targad) - min(targad)
    print(f"TargAD spread across settings: {spread:.3f}")
    # Shape: TargAD leads in the hardest setting (3 novel types).
    hard = rows["3 new"]
    assert hard["TargAD"] >= max(v for k, v in hard.items() if k != "TargAD") - 0.05


def test_fig4b_target_class_count(benchmark):
    """Panel (b): m target classes from 1 to 6."""
    settings = {f"m={m}": ALL_FAMILIES[:m] for m in range(1, 7)}

    def run():
        return {
            label: run_setting({"target_families": fams})
            for label, fams in settings.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_panel(
        f"Fig. 4(b) — AUPRC vs number of target classes "
        f"(scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds)",
        list(settings), rows,
    )
    print("Paper shape: TargAD leads at every m; single-target (m=1) easiest.")
    wins = sum(
        rows[c]["TargAD"] >= max(v for k, v in rows[c].items() if k != "TargAD") - 0.05
        for c in settings
    )
    assert wins >= len(settings) - 1


def test_fig4c_labeled_budget(benchmark):
    """Panel (c): labeled anomalies per class in {20, 60, 100}."""
    settings = {f"{n}/class": n * len(TARGETS) for n in (20, 60, 100)}

    def run():
        return {
            label: run_setting({"n_labeled": total})
            for label, total in settings.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_panel(
        f"Fig. 4(c) — AUPRC vs labeled anomalies per class "
        f"(scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds; labeled counts share "
        "the pool scaling floor, see DESIGN.md)",
        list(settings), rows,
    )
    print("Paper shape: everyone improves with labels; TargAD robust even at 20/class.")
    targad = [rows[c]["TargAD"] for c in settings]
    # Shape: more labels never hurt TargAD much.
    assert targad[-1] >= targad[0] - 0.05


def test_fig4d_contamination(benchmark):
    """Panel (d): anomaly contamination rate of the unlabeled pool."""
    rates = [0.03, 0.05, 0.07, 0.09]

    def run():
        return {f"{int(r*100)}%": run_setting({"contamination": r}) for r in rates}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_panel(
        f"Fig. 4(d) — AUPRC vs contamination rate "
        f"(scale={BENCH_SCALE}, {len(BENCH_SEEDS)} seeds)",
        [f"{int(r*100)}%" for r in rates], rows,
    )
    print("Paper shape: TargAD leads at every rate; mid-range (5-7%) peaks.")
    wins = sum(
        rows[c]["TargAD"] >= max(v for k, v in rows[c].items() if k != "TargAD") - 0.05
        for c in rows
    )
    assert wins >= len(rates) - 1
