"""Shared benchmark configuration and the paper's reference numbers.

Every benchmark regenerates one table or figure of the paper and prints
our measured values next to the paper's reported ones. Absolute numbers
are not expected to match (the data substrate is a synthetic analog — see
DESIGN.md); the *shape* — who wins, rough factors, where trends bend — is
the reproduction target and is what EXPERIMENTS.md records.

Environment knobs:

- ``REPRO_BENCH_SCALE`` — dataset size multiplier for benchmarks
  (default 0.05; Table I sizes are 1.0).
- ``REPRO_BENCH_SEEDS`` — number of independent runs per configuration
  (default 3; the paper uses 5).
- ``REPRO_BENCH_MODELS`` — comma-separated detector subset for the
  robustness figures (default a representative set; "all" for every
  semi-supervised baseline).
- ``REPRO_BENCH_TIMING_DIR`` — where per-phase timing JSON lands
  (default ``benchmarks/timings/``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEEDS = list(range(int(os.environ.get("REPRO_BENCH_SEEDS", "3"))))

TIMING_FORMAT_VERSION = 1


def timing_dir() -> Path:
    """Directory for per-phase timing JSON files."""
    default = Path(__file__).parent / "timings"
    return Path(os.environ.get("REPRO_BENCH_TIMING_DIR", str(default)))


def write_phase_timings(
    bench_name: str,
    phases: Dict[str, float],
    extra: Optional[Dict] = None,
) -> Path:
    """Dump one benchmark's per-phase wall-clock seconds as JSON.

    Written *alongside* the printed results (never into them), so the
    ``BENCH_*`` trajectories gain a time axis without any existing result
    field changing. ``phases`` is typically
    ``repro.obs.PhaseTimer.as_dict()``.
    """
    payload = {
        "format_version": TIMING_FORMAT_VERSION,
        "bench": bench_name,
        "scale": BENCH_SCALE,
        "phases": {name: round(float(seconds), 6) for name, seconds in phases.items()},
        "total_s": round(float(sum(phases.values())), 6),
    }
    if extra:
        payload.update(extra)
    out_dir = timing_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{bench_name}_timing.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path

_DEFAULT_FIG4_MODELS = ["DevNet", "DeepSAD", "PIA-WAL", "PReNet", "TargAD"]


def fig4_models() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_MODELS", "")
    if not raw:
        return list(_DEFAULT_FIG4_MODELS)
    if raw.strip().lower() == "all":
        return ["ADOA", "FEAWAD", "PUMAD", "DevNet", "DeepSAD", "DPLAN",
                "PIA-WAL", "Dual-MGAN", "PReNet", "TargAD"]
    return [name.strip() for name in raw.split(",") if name.strip()]


# ---------------------------------------------------------------------------
# Paper reference values (Table II, AUPRC / AUROC, mean over 5 runs)
# ---------------------------------------------------------------------------
PAPER_TABLE2_AUPRC: Dict[str, Dict[str, float]] = {
    "iForest":   {"unsw_nb15": 0.301, "kddcup99": 0.333, "nsl_kdd": 0.356, "sqb": 0.035},
    "REPEN":     {"unsw_nb15": 0.276, "kddcup99": 0.545, "nsl_kdd": 0.524, "sqb": 0.013},
    "ADOA":      {"unsw_nb15": 0.226, "kddcup99": 0.236, "nsl_kdd": 0.210, "sqb": 0.018},
    "FEAWAD":    {"unsw_nb15": 0.540, "kddcup99": 0.593, "nsl_kdd": 0.741, "sqb": 0.057},
    "PUMAD":     {"unsw_nb15": 0.573, "kddcup99": 0.922, "nsl_kdd": 0.691, "sqb": 0.202},
    "DevNet":    {"unsw_nb15": 0.671, "kddcup99": 0.912, "nsl_kdd": 0.850, "sqb": 0.126},
    "DeepSAD":   {"unsw_nb15": 0.677, "kddcup99": 0.765, "nsl_kdd": 0.752, "sqb": 0.132},
    "DPLAN":     {"unsw_nb15": 0.658, "kddcup99": 0.834, "nsl_kdd": 0.832, "sqb": 0.151},
    "PIA-WAL":   {"unsw_nb15": 0.698, "kddcup99": 0.780, "nsl_kdd": 0.893, "sqb": 0.139},
    "Dual-MGAN": {"unsw_nb15": 0.646, "kddcup99": 0.866, "nsl_kdd": 0.725, "sqb": 0.096},
    "PReNet":    {"unsw_nb15": 0.712, "kddcup99": 0.920, "nsl_kdd": 0.787, "sqb": 0.125},
    "TargAD":    {"unsw_nb15": 0.804, "kddcup99": 0.949, "nsl_kdd": 0.913, "sqb": 0.261},
}

PAPER_TABLE2_AUROC: Dict[str, Dict[str, float]] = {
    "iForest":   {"unsw_nb15": 0.783, "kddcup99": 0.944, "nsl_kdd": 0.917, "sqb": 0.912},
    "REPEN":     {"unsw_nb15": 0.875, "kddcup99": 0.957, "nsl_kdd": 0.905, "sqb": 0.855},
    "ADOA":      {"unsw_nb15": 0.852, "kddcup99": 0.933, "nsl_kdd": 0.900, "sqb": 0.921},
    "FEAWAD":    {"unsw_nb15": 0.946, "kddcup99": 0.975, "nsl_kdd": 0.968, "sqb": 0.942},
    "PUMAD":     {"unsw_nb15": 0.903, "kddcup99": 0.982, "nsl_kdd": 0.954, "sqb": 0.978},
    "DevNet":    {"unsw_nb15": 0.950, "kddcup99": 0.993, "nsl_kdd": 0.985, "sqb": 0.977},
    "DeepSAD":   {"unsw_nb15": 0.974, "kddcup99": 0.993, "nsl_kdd": 0.986, "sqb": 0.985},
    "DPLAN":     {"unsw_nb15": 0.951, "kddcup99": 0.985, "nsl_kdd": 0.973, "sqb": 0.971},
    "PIA-WAL":   {"unsw_nb15": 0.946, "kddcup99": 0.977, "nsl_kdd": 0.981, "sqb": 0.963},
    "Dual-MGAN": {"unsw_nb15": 0.913, "kddcup99": 0.988, "nsl_kdd": 0.969, "sqb": 0.969},
    "PReNet":    {"unsw_nb15": 0.937, "kddcup99": 0.992, "nsl_kdd": 0.983, "sqb": 0.972},
    "TargAD":    {"unsw_nb15": 0.978, "kddcup99": 0.994, "nsl_kdd": 0.988, "sqb": 0.958},
}

# Table III (UNSW-NB15 ablations; paper reports TargAD best by 2-4% AUPRC)
PAPER_TABLE3_NOTE = (
    "Paper Table III: TargAD beats its ablations by 2-4% AUPRC and 0.5-2% "
    "AUROC on UNSW-NB15; TargAD_-O-R (plain L_CE) is the weakest variant."
)

# Table IV (tri-class identification on UNSW-NB15)
PAPER_TABLE4: Dict[str, Dict[str, Dict[str, float]]] = {
    "MSP": {
        "normal":     {"precision": 0.935, "recall": 0.972, "f1": 0.953},
        "target":     {"precision": 0.644, "recall": 0.812, "f1": 0.718},
        "non-target": {"precision": 0.414, "recall": 0.209, "f1": 0.278},
        "macro avg":  {"precision": 0.665, "recall": 0.664, "f1": 0.650},
        "weighted avg": {"precision": 0.861, "recall": 0.882, "f1": 0.867},
    },
    "ES": {
        "normal":     {"precision": 0.934, "recall": 0.982, "f1": 0.957},
        "target":     {"precision": 0.571, "recall": 0.291, "f1": 0.385},
        "non-target": {"precision": 0.375, "recall": 0.351, "f1": 0.362},
        "macro avg":  {"precision": 0.627, "recall": 0.541, "f1": 0.568},
        "weighted avg": {"precision": 0.849, "recall": 0.866, "f1": 0.854},
    },
    "ED": {
        "normal":     {"precision": 0.936, "recall": 0.970, "f1": 0.953},
        "target":     {"precision": 0.810, "recall": 0.438, "f1": 0.569},
        "non-target": {"precision": 0.449, "recall": 0.467, "f1": 0.458},
        "macro avg":  {"precision": 0.732, "recall": 0.625, "f1": 0.660},
        "weighted avg": {"precision": 0.877, "recall": 0.879, "f1": 0.874},
    },
}
