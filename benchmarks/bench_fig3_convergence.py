"""Fig. 3 — convergence analysis on UNSW-NB15.

(a) TargAD's training-loss curve per epoch — expected shape: loss falls
    and stabilizes within a narrow band after ~half the epochs.
(b) Per-epoch *test* AUPRC of TargAD vs semi-supervised baselines —
    expected shape: TargAD reaches the best AUPRC and dominates the
    baselines' curves by the end of training.
"""

import numpy as np
import pytest

from _common import BENCH_SCALE
from repro.core import TargAD, TargADConfig
from repro.data import load_dataset
from repro.eval import ResultTable, make_detector
from repro.eval.protocol import fit_on_split
from repro.eval.registry import DATASET_K
from repro.metrics import auprc

BASELINES = ["DevNet", "DeepSAD", "PReNet"]
SEED = 0


def run_convergence():
    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    with timer.phase("load_dataset"):
        split = load_dataset("unsw_nb15", random_state=SEED, scale=BENCH_SCALE)
    curves = {}

    targad_curve = []
    model = TargAD(TargADConfig(random_state=SEED, k=DATASET_K["unsw_nb15"]))
    with timer.phase("targad_fit"):
        model.fit(
            split.X_unlabeled, split.X_labeled, split.y_labeled,
            epoch_callback=lambda e, m: targad_curve.append(
                auprc(split.y_test_binary, m.decision_function(split.X_test))
            ),
        )
    curves["TargAD"] = targad_curve
    loss_curve = list(model.loss_history)

    for name in BASELINES:
        curve = []
        det = make_detector(name, random_state=SEED, dataset="unsw_nb15")
        with timer.phase(f"baseline_{name}"):
            fit_on_split(
                det, split,
                epoch_callback=lambda e, d: curve.append(
                    auprc(split.y_test_binary, d.decision_function(split.X_test))
                ),
            )
        curves[name] = curve
    return loss_curve, curves, timer


def test_fig3_convergence(benchmark):
    from _common import write_phase_timings
    from repro.viz import line_chart, sparkline

    loss_curve, curves, timer = benchmark.pedantic(run_convergence, rounds=1, iterations=1)
    timing_path = write_phase_timings("bench_fig3_convergence", timer.as_dict(),
                                      extra={"seed": SEED})
    print(f"\nPer-phase timing ({timer.summary()}) written to {timing_path}")

    print(f"\nFig. 3(a) — TargAD training loss per epoch (scale={BENCH_SCALE}):")
    print("  " + sparkline(loss_curve))
    print("  " + " ".join(f"{v:.3f}" for v in loss_curve))
    half = len(loss_curve) // 2
    tail_band = max(loss_curve[half:]) - min(loss_curve[half:])
    head_band = max(loss_curve[:half]) - min(loss_curve[:half])
    print(f"  loss range first half={head_band:.3f}, second half={tail_band:.3f} "
          "(paper: narrow fluctuation after epoch 15)")

    table = ResultTable(
        "Fig. 3(b) — test AUPRC at selected epochs",
        columns=["epoch 1", "25%", "50%", "75%", "final"],
    )
    for name, curve in curves.items():
        n = len(curve)
        picks = [0, n // 4, n // 2, (3 * n) // 4, n - 1]
        table.add_row(name, {
            col: f"{curve[i]:.3f}" for col, i in zip(table.columns, picks)
        })
    table.print()
    print(line_chart(curves, title="Fig. 3(b) — test AUPRC per epoch",
                     y_label="AUPRC", width=60, height=12))
    print("Paper shape: TargAD converges to the best AUPRC of all curves.")

    # Shape assertions: loss decreases; late band is narrower than early;
    # TargAD's final AUPRC tops the baselines' finals.
    assert loss_curve[-1] < loss_curve[0]
    assert tail_band <= head_band
    final = {name: curve[-1] for name, curve in curves.items()}
    assert final["TargAD"] >= max(v for k, v in final.items() if k != "TargAD") - 0.05
