"""Inference throughput: autodiff graph path vs compiled graph-free path.

Measures rows/sec through ``forward_in_batches`` — the entry point every
read path in the repository uses — for two workloads:

- ``classifier_head`` — the TargAD classifier MLP that scores every
  serving batch (``score_batch``/``decision_function``). This is the
  primary serving workload and the headline number.
- ``autoencoder_fallback`` — the fused candidate-selection autoencoder
  the degraded fallback scores with. Its wider matmuls are BLAS-bound,
  so the compiled path's allocation savings matter less.
- ``sharded_serving`` — end-to-end ``ScoringPipeline.process`` over a
  large batch, single-process vs a 2-worker shard pool (see
  :mod:`repro.serving.sharding`). On many-core hosts sharding wins once
  batches are large; on small hosts the IPC overhead shows up honestly
  as a sub-1x speedup.

Three variants per forward workload, interleaved inside a single timing
loop so clock drift and CPU frequency scaling hit all variants equally:

- ``graph``        — Tensor graph forward (``force_graph_forward()``)
- ``compiled``     — compiled float64 plan (the serving default)
- ``compiled_f32`` — compiled float32 plan (opt-in reduced precision)

Each workload runs in its own subprocess. This is deliberate: the graph
path's throughput depends on allocator history (glibc raises its mmap
threshold after large frees, which can double the speed of the graph
path's per-op temporary allocations), so measuring workloads back to
back in one process lets the first workload change what the second one
measures. A fresh process per workload is both isolated and what a
fresh serving process actually experiences. Worker subprocesses run
with BLAS/OMP thread pools pinned to one thread (the payload records
the pinning and the host's ``cpu_count``), so numbers compare across
runs instead of tracking whatever thread count the host BLAS picked.

Writes ``BENCH_inference.json`` at the repo root. Non-gating: the ci.sh
``bench`` lane runs this for trend tracking, not as a pass/fail check.

Usage::

    PYTHONPATH=src python scripts/bench_inference.py [--repeats 9] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
BATCH_SIZE = 2048
ROWS = 16384

#: name -> mlp() layer sizes (all take 32 input features).
WORKLOADS = {
    # TargAD classifier head: features -> m + k logits (Eq. 9 inputs).
    "classifier_head": [32, 64, 32, 5],
    # Candidate-selection AE, encoder+decoder fused (Eq. 2 read path).
    "autoencoder_fallback": [32, 64, 16, 64, 32],
}

#: End-to-end pipeline workload (not a plain forward pass).
SHARDED_WORKLOAD = "sharded_serving"
SHARD_ROWS = 65536
SHARD_WORKERS = 2

#: Backend-comparison workloads: the SQB one-hot regime (a small dense
#: numeric prefix followed by wide one-hot categorical blocks) at the
#: 182-feature width, through the TargAD classifier-head and AE-fallback
#: shapes. These batches are where the tiled backend's sparse-aware
#: first-layer kernel replaces most of the first matmul with per-row
#: weight gathers; dense workloads above stay on the reference numbers.
BACKEND_WORKLOADS = {
    "sqb_onehot_head": [182, 64, 32, 5],
    "sqb_onehot_ae": [182, 128, 32, 128, 182],
}
ONEHOT_DENSE_FEATURES = 20
ONEHOT_BLOCKS = (122, 40)

#: Pin every BLAS/OMP pool to one thread in worker subprocesses so the
#: numbers measure the code, not the host's implicit thread count.
THREAD_ENV = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}


def _measure(name: str, repeats: int) -> dict:
    """Best-of-``repeats`` rows/sec per variant, variants interleaved."""
    from repro.backend import inference_precision
    from repro.nn import force_graph_forward, forward_in_batches
    from repro.nn.layers import mlp

    sizes = WORKLOADS[name]
    rng = np.random.default_rng(0)
    output_activation = "relu" if name == "autoencoder_fallback" else "linear"
    model = mlp(sizes, activation="relu",
                output_activation=output_activation, rng=rng)
    X = rng.normal(size=(ROWS, sizes[0]))

    def once() -> float:
        start = time.perf_counter()
        forward_in_batches(model, X, batch_size=BATCH_SIZE)
        return time.perf_counter() - start

    # Warm every variant (first call allocates plan buffers / graph arrays).
    with force_graph_forward():
        once()
    once()
    with inference_precision(np.float32):
        once()
    best = {"graph": float("inf"), "compiled": float("inf"), "f32": float("inf")}
    for _ in range(repeats):
        with force_graph_forward():
            best["graph"] = min(best["graph"], once())
        best["compiled"] = min(best["compiled"], once())
        with inference_precision(np.float32):
            best["f32"] = min(best["f32"], once())
    return {
        "workload": name,
        "backend": "numpy",
        "rows": ROWS,
        "graph_rows_per_sec": round(ROWS / best["graph"], 1),
        "compiled_rows_per_sec": round(ROWS / best["compiled"], 1),
        "compiled_f32_rows_per_sec": round(ROWS / best["f32"], 1),
        "speedup_compiled_vs_graph": round(best["graph"] / best["compiled"], 2),
        "speedup_f32_vs_graph": round(best["graph"] / best["f32"], 2),
    }


def _make_onehot_batch(rng, rows: int) -> np.ndarray:
    """An SQB-regime batch: dense numeric prefix + Zipf one-hot blocks."""
    d = ONEHOT_DENSE_FEATURES + sum(ONEHOT_BLOCKS)
    X = np.zeros((rows, d))
    X[:, :ONEHOT_DENSE_FEATURES] = rng.normal(size=(rows, ONEHOT_DENSE_FEATURES))
    off = ONEHOT_DENSE_FEATURES
    for b in ONEHOT_BLOCKS:
        p = (1.0 / np.arange(1, b + 1)) ** 1.2
        idx = rng.choice(b, size=rows, p=p / p.sum())
        X[np.arange(rows), off + idx] = 1.0
        off += b
    return X


def _measure_backend_compare(name: str, repeats: int) -> dict:
    """Compiled rows/sec under the numpy vs tiled backend, interleaved.

    Both backends run the identical compiled plan structure on the same
    one-hot batches; the tiled backend's sparse fused kernel is asserted
    to both fire (``sparse_hits``) and agree with the reference output to
    its published 1e-9 parity tolerance before any timing is trusted.
    """
    from repro.backend import get_backend, use_backend
    from repro.nn import forward_in_batches
    from repro.nn.layers import mlp

    sizes = BACKEND_WORKLOADS[name]
    rng = np.random.default_rng(0)
    output_activation = "relu" if name == "sqb_onehot_ae" else "linear"
    model = mlp(sizes, activation="relu",
                output_activation=output_activation, rng=rng)
    X = _make_onehot_batch(rng, ROWS)

    def once() -> float:
        start = time.perf_counter()
        forward_in_batches(model, X, batch_size=BATCH_SIZE)
        return time.perf_counter() - start

    tiled = get_backend("tiled")
    reference = forward_in_batches(model, X, batch_size=BATCH_SIZE)
    hits_before = tiled.sparse_hits
    with use_backend("tiled"):
        got = forward_in_batches(model, X, batch_size=BATCH_SIZE)
    if tiled.sparse_hits == hits_before:
        raise RuntimeError(f"{name}: tiled sparse path never fired")
    np.testing.assert_allclose(got, reference, atol=tiled.parity_atol, rtol=0)

    best = {"numpy": float("inf"), "tiled": float("inf")}
    for _ in range(repeats):
        best["numpy"] = min(best["numpy"], once())
        with use_backend("tiled"):
            best["tiled"] = min(best["tiled"], once())
    return {
        "workload": name,
        "backend": "numpy+tiled",
        "rows": ROWS,
        "onehot_blocks": list(ONEHOT_BLOCKS),
        "numpy_rows_per_sec": round(ROWS / best["numpy"], 1),
        "tiled_rows_per_sec": round(ROWS / best["tiled"], 1),
        "speedup_tiled_vs_numpy": round(best["numpy"] / best["tiled"], 2),
    }


def _measure_sharded(repeats: int) -> dict:
    """Pipeline rows/sec: single-process vs a 2-worker shard pool.

    Fits a real (tiny, fast) TargAD whose classifier network is exactly
    the ``classifier_head`` architecture — scoring throughput does not
    care about accuracy, but the pipeline needs the full fitted model
    (candidate selection included) to calibrate its fallback scorer.
    """
    from repro.core.config import TargADConfig
    from repro.core.model import TargAD
    from repro.serving import ScoringPipeline

    rng = np.random.default_rng(0)
    sizes = WORKLOADS["classifier_head"]
    n_features = sizes[0]
    m, k = 3, sizes[-1] - 3  # network: features -> clf_hidden -> m + k
    X_unlabeled = np.vstack([
        rng.normal(size=(600, n_features)),
        rng.normal(3.0, 1.0, size=(60, n_features)),
    ])
    X_labeled = rng.normal(5.0, 1.0, size=(48, n_features))
    y_labeled = rng.integers(0, m, size=48)
    model = TargAD(TargADConfig(
        k=k, clf_hidden=tuple(sizes[1:-1]), clf_epochs=3, ae_epochs=5,
        random_state=0,
    ))
    model.fit(X_unlabeled, X_labeled, y_labeled)
    X_val = rng.normal(size=(2048, n_features))
    X = rng.normal(size=(SHARD_ROWS, n_features))

    def make_pipeline(workers: int) -> "ScoringPipeline":
        pipe = ScoringPipeline(
            model, policy="budget", review_budget=100, monitor_drift=False,
            shard_workers=workers, min_shard_rows=4096,
        )
        return pipe.calibrate(X_val)

    single = make_pipeline(0)
    sharded = make_pipeline(SHARD_WORKERS)

    def once(pipe: "ScoringPipeline") -> float:
        start = time.perf_counter()
        pipe.process(X)
        return time.perf_counter() - start

    once(single)   # warm: plan cache
    once(sharded)  # warm: pool spawn + per-worker plan cache
    best = {"single": float("inf"), "sharded": float("inf")}
    for _ in range(repeats):
        best["single"] = min(best["single"], once(single))
        best["sharded"] = min(best["sharded"], once(sharded))
    sharded.close()
    return {
        "workload": SHARDED_WORKLOAD,
        "backend": "numpy",
        "rows": SHARD_ROWS,
        "shard_workers": SHARD_WORKERS,
        "single_rows_per_sec": round(SHARD_ROWS / best["single"], 1),
        "sharded_rows_per_sec": round(SHARD_ROWS / best["sharded"], 1),
        "speedup_sharded_vs_single": round(best["single"] / best["sharded"], 2),
    }


def run(repeats: int) -> dict:
    results = []
    for name in [*WORKLOADS, *BACKEND_WORKLOADS, SHARDED_WORKLOAD]:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.update(THREAD_ENV)
        proc = subprocess.run(
            [sys.executable, __file__, "--worker", name,
             "--repeats", str(repeats)],
            capture_output=True, text=True, check=True,
            cwd=REPO_ROOT, env=env,
        )
        results.append(json.loads(proc.stdout))
    serving = [r for r in results if r["workload"] == "classifier_head"]
    compares = [r for r in results if r["workload"] in BACKEND_WORKLOADS]
    return {
        "benchmark": "inference_throughput",
        "repeats": repeats,
        "batch_size": BATCH_SIZE,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "thread_env": dict(THREAD_ENV),
        "results": results,
        # Headline: the serving scoring path every batch goes through.
        "serving_speedup_compiled_vs_graph": min(
            r["speedup_compiled_vs_graph"] for r in serving
        ),
        "serving_speedup_f32_vs_graph": min(
            r["speedup_f32_vs_graph"] for r in serving
        ),
        # Best tiled-backend win on the SQB one-hot workloads (the
        # bench_baseline.json floor checks this, non-gating).
        "tiled_speedup_vs_numpy_max": max(
            r["speedup_tiled_vs_numpy"] for r in compares
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_inference.json")
    parser.add_argument("--worker",
                        choices=sorted([*WORKLOADS, *BACKEND_WORKLOADS,
                                        SHARDED_WORKLOAD]),
                        help="internal: measure one workload, print JSON")
    args = parser.parse_args()
    if args.worker == SHARDED_WORKLOAD:
        print(json.dumps(_measure_sharded(args.repeats)))
        return
    if args.worker in BACKEND_WORKLOADS:
        print(json.dumps(_measure_backend_compare(args.worker, args.repeats)))
        return
    if args.worker:
        print(json.dumps(_measure(args.worker, args.repeats)))
        return
    payload = run(args.repeats)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    for row in payload["results"]:
        if row["workload"] in BACKEND_WORKLOADS:
            print(
                f"  {row['workload']:>20} rows={row['rows']:<6} "
                f"numpy={row['numpy_rows_per_sec']:>12,.0f} r/s  "
                f"tiled={row['tiled_rows_per_sec']:>12,.0f} r/s  "
                f"({row['speedup_tiled_vs_numpy']}x)"
            )
            continue
        if row["workload"] == SHARDED_WORKLOAD:
            print(
                f"  {row['workload']:>20} rows={row['rows']:<6} "
                f"single={row['single_rows_per_sec']:>12,.0f} r/s  "
                f"sharded={row['sharded_rows_per_sec']:>12,.0f} r/s  "
                f"({row['speedup_sharded_vs_single']}x, "
                f"{row['shard_workers']} workers)"
            )
            continue
        print(
            f"  {row['workload']:>20} rows={row['rows']:<6} "
            f"graph={row['graph_rows_per_sec']:>12,.0f} r/s  "
            f"compiled={row['compiled_rows_per_sec']:>12,.0f} r/s  "
            f"({row['speedup_compiled_vs_graph']}x, "
            f"f32 {row['speedup_f32_vs_graph']}x)"
        )
    print(
        "  serving headline: "
        f"{payload['serving_speedup_compiled_vs_graph']}x compiled, "
        f"{payload['serving_speedup_f32_vs_graph']}x float32, "
        f"tiled-vs-numpy {payload['tiled_speedup_vs_numpy_max']}x (one-hot)"
    )


if __name__ == "__main__":
    main()
