#!/usr/bin/env bash
# CI entry point: tier-1 suite first (the gate), then the fast lane.
#
#   scripts/ci.sh          # tier-1 + fast lane
#   scripts/ci.sh fast     # fast lane only (-m "not slow")
#   scripts/ci.sh tier1    # tier-1 gate only
#   scripts/ci.sh chaos    # chaos lane only (-m chaos fault-injection scenarios)
#   scripts/ci.sh taxonomy # anomaly-taxonomy lane (-m taxonomy injector/sweep tests)
#   scripts/ci.sh shard    # multi-process sharding tests (2-worker pools)
#   scripts/ci.sh daemon   # serving daemon + shm ring suites + replay smoke
#   scripts/ci.sh executor # executor conformance suite (2-worker pools)
#   scripts/ci.sh lifecycle # drift-triggered refit + hot-swap suites + CLI smoke
#   scripts/ci.sh backend  # backend conformance + parity under numpy AND tiled
#   scripts/ci.sh bench    # inference throughput benchmark (non-gating)
#
# The tier-1 gate is the canonical `PYTHONPATH=src python -m pytest -x -q`
# run from ROADMAP.md. The fast lane re-runs the suite without the `slow`
# marker (wall-clock-sensitive tests like the telemetry overhead guard),
# which is the loop to use while iterating locally.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

lane="${1:-all}"

run_tier1() {
    echo "== tier-1 gate: full test suite =="
    python -m pytest -x -q
}

run_fast() {
    echo '== fast lane: -m "not slow" =='
    python -m pytest -x -q -m "not slow"
}

run_chaos() {
    echo '== chaos lane: -m chaos =='
    python -m pytest -x -q -m chaos
}

run_taxonomy() {
    # The anomaly-taxonomy lane: injector semantics + property tests plus
    # a tiny cross-family sweep (2 families, smoke-scale splits), so the
    # taxonomy subsystem can be gated without paying for the full grid.
    echo '== taxonomy lane: -m taxonomy =='
    python -m pytest -x -q -m taxonomy
}

run_shard() {
    # The serving fast-path suites: sharded pipelines spin up real
    # 2-worker process pools, so this lane exercises true multi-process
    # scoring plus the plan cache and fused kernels they depend on.
    echo '== shard lane: multi-process sharding + serving fast path =='
    python -m pytest -x -q tests/serving/test_sharding.py \
        tests/nn/test_plan_cache.py tests/nn/test_fused_kernels.py
}

run_daemon() {
    # The always-on serving lane: daemon parity/failure tests and the
    # ring-buffer property suite spin up real worker pools over shared
    # memory, and the soak test cycles 25 daemon lifecycles across fork
    # and spawn. Includes the `slow`-marked pieces (2-worker replay
    # smoke, soak) that the fast lane skips, plus a shrunken open-loop
    # traffic replay through the bench harness as an end-to-end smoke.
    echo '== daemon lane: serving daemon + shm rings + replay smoke =='
    python -m pytest -x -q tests/serving/test_daemon.py \
        tests/serving/test_ring_properties.py \
        tests/serving/test_daemon_soak.py
    python scripts/bench_replay.py --smoke --out /tmp/bench_replay_smoke.json
}

run_executor() {
    # The execution-layer lane: the conformance suite holds every
    # executor (inline / sharded / daemon / striped daemon) to one
    # contract — bitwise parity with inline incl. post-swap, infra
    # faults demoting down the chain without touching the breaker,
    # model faults propagating into it, update_spec visibility,
    # idempotent close — with real 2-worker pools, plus the zero-copy
    # result-read regressions the daemon path depends on.
    echo '== executor lane: conformance across execution paths =='
    python -m pytest -x -q tests/serving/test_executor_conformance.py \
        tests/serving/test_zero_copy.py
}

run_lifecycle() {
    # The continual-learning lane: drift-triggered refit + zero-downtime
    # hot-swap. Covers the LifecycleManager loop, the hot-swap integration
    # suite (plain / daemon / sharded pipelines, bitwise post-swap parity,
    # concurrent-traffic atomicity), drift-monitor robustness regressions,
    # checkpoint housekeeping, and the swap-phase chaos scenarios. Ends
    # with a CLI drift-replay smoke on a tiny split.
    echo '== lifecycle lane: drift-triggered refit + hot-swap =='
    python -m pytest -x -q tests/lifecycle \
        tests/serving/test_hotswap.py tests/serving/test_drift.py \
        tests/resilience/test_checkpoint.py tests/resilience/test_faultinject.py
    python -m pytest -x -q -m chaos tests/serving/test_chaos.py -k Swap
    python -m repro.cli lifecycle --dataset kddcup99 --scale 0.02 \
        --refit-epochs 2 --json /tmp/lifecycle_smoke.json
}

run_backend() {
    # The execution-backend lane: the registry-parametrized conformance
    # suite (compiled-vs-graph parity under every registered backend at
    # its published parity_atol), the tiled kernel unit tests (sparse
    # gather path, verification fallbacks, plan/scratch caching), the
    # fused-kernel dispatch suite, the backend-keyed plan cache, and the
    # end-to-end parity suite — which runs TargAD scoring under
    # use_backend("tiled") as well as the default.
    echo '== backend lane: conformance under numpy + tiled =='
    python -m pytest -x -q tests/backend \
        tests/nn/test_backend_conformance.py \
        tests/nn/test_fused_kernels.py tests/nn/test_plan_cache.py \
        tests/test_inference_parity.py
}

run_bench() {
    # Non-gating: records graph vs compiled inference throughput in
    # BENCH_inference.json for trend tracking; never fails the build.
    # A compiled-speedup regression below the recorded baseline floors
    # (scripts/bench_baseline.json) is announced loudly — a GitHub
    # ::warning annotation when supported, stderr always — but still
    # does not gate.
    echo '== bench lane: inference throughput (non-gating) =='
    python scripts/bench_inference.py || echo "bench lane failed (non-gating)"
    python scripts/bench_replay.py || echo "replay bench failed (non-gating)"
    python - <<'EOF' || true
import json, sys
from pathlib import Path

try:
    baseline = json.loads(Path("scripts/bench_baseline.json").read_text())
    payload = json.loads(Path("BENCH_inference.json").read_text())
except OSError as exc:
    print(f"bench baseline check skipped: {exc}", file=sys.stderr)
    raise SystemExit(0)
speedups = {
    row["workload"]: row.get("speedup_compiled_vs_graph")
    for row in payload["results"]
}
for workload in ("autoencoder_fallback", "classifier_head"):
    floor = baseline.get(f"{workload}_speedup_min")
    got = speedups.get(workload)
    if floor is None or got is None:
        continue
    if got < floor:
        message = (
            f"compiled inference speedup regression: {workload} at "
            f"{got}x, baseline floor {floor}x (non-gating)"
        )
        # GitHub-style annotation so the regression is loud in CI UIs;
        # plain stderr everywhere else.
        print(f"::warning title=bench regression::{message}")
        print(f"WARNING: {message}", file=sys.stderr)
    else:
        print(f"bench check: {workload} {got}x >= floor {floor}x")

# Tiled-backend rows: the sparse-aware kernel's best win over the
# reference backend on the SQB one-hot workloads must stay above its
# recorded floor (non-gating, like everything in this lane).
tiled_floor = baseline.get("tiled_vs_numpy_speedup_min")
tiled_best = payload.get("tiled_speedup_vs_numpy_max")
if tiled_floor is not None and tiled_best is not None:
    if tiled_best < tiled_floor:
        message = (
            f"tiled backend regression: best tiled-vs-numpy speedup "
            f"{tiled_best}x, baseline floor {tiled_floor}x (non-gating)"
        )
        print(f"::warning title=bench regression::{message}")
        print(f"WARNING: {message}", file=sys.stderr)
    else:
        print(f"bench check: tiled-vs-numpy {tiled_best}x >= "
              f"floor {tiled_floor}x")

# Latency-under-load rows from bench_replay.py: the daemon's best
# throughput speedup over the single-process baseline must stay above
# its recorded floor, and every replay row must carry latency data.
replay = payload.get("traffic_replay")
floor = baseline.get("replay_daemon_speedup_min")
if replay and floor is not None:
    best = replay.get("daemon_speedup_best")
    if best is None or best < floor:
        message = (
            f"traffic-replay regression: daemon best speedup {best}x "
            f"under load, baseline floor {floor}x (non-gating)"
        )
        print(f"::warning title=bench regression::{message}")
        print(f"WARNING: {message}", file=sys.stderr)
    else:
        print(f"bench check: replay daemon {best}x >= floor {floor}x")
    striped_floor = baseline.get("replay_striped_daemon_speedup_min")
    best_striped = replay.get("striped_speedup_best")
    if striped_floor is not None and best_striped is not None:
        if best_striped < striped_floor:
            message = (
                f"traffic-replay regression: striped daemon at "
                f"{best_striped}x vs plain daemon, baseline floor "
                f"{striped_floor}x (non-gating)"
            )
            print(f"::warning title=bench regression::{message}")
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            print(f"bench check: striped daemon {best_striped}x >= "
                  f"floor {striped_floor}x")
    for row in replay.get("results", ()):
        for mode in ("single", "daemon", "striped"):
            d = row.get(mode)
            if d is None:
                continue
            if not d.get("latency_p99_ms"):
                message = (
                    f"traffic-replay row {row.get('workload')}/{mode} "
                    "missing p99 latency (non-gating)"
                )
                print(f"::warning title=bench regression::{message}")
                print(f"WARNING: {message}", file=sys.stderr)
EOF
}

case "$lane" in
    tier1) run_tier1 ;;
    fast)  run_fast ;;
    chaos) run_chaos ;;
    taxonomy) run_taxonomy ;;
    shard) run_shard ;;
    daemon) run_daemon ;;
    executor) run_executor ;;
    lifecycle) run_lifecycle ;;
    backend) run_backend ;;
    bench) run_bench ;;
    all)   run_tier1; run_fast ;;
    *)     echo "usage: scripts/ci.sh [tier1|fast|chaos|taxonomy|shard|daemon|executor|lifecycle|backend|bench|all]" >&2; exit 2 ;;
esac
