#!/usr/bin/env bash
# CI entry point: tier-1 suite first (the gate), then the fast lane.
#
#   scripts/ci.sh          # tier-1 + fast lane
#   scripts/ci.sh fast     # fast lane only (-m "not slow")
#   scripts/ci.sh tier1    # tier-1 gate only
#   scripts/ci.sh chaos    # chaos lane only (-m chaos fault-injection scenarios)
#   scripts/ci.sh bench    # inference throughput benchmark (non-gating)
#
# The tier-1 gate is the canonical `PYTHONPATH=src python -m pytest -x -q`
# run from ROADMAP.md. The fast lane re-runs the suite without the `slow`
# marker (wall-clock-sensitive tests like the telemetry overhead guard),
# which is the loop to use while iterating locally.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

lane="${1:-all}"

run_tier1() {
    echo "== tier-1 gate: full test suite =="
    python -m pytest -x -q
}

run_fast() {
    echo '== fast lane: -m "not slow" =='
    python -m pytest -x -q -m "not slow"
}

run_chaos() {
    echo '== chaos lane: -m chaos =='
    python -m pytest -x -q -m chaos
}

run_bench() {
    # Non-gating: records graph vs compiled inference throughput in
    # BENCH_inference.json for trend tracking; never fails the build.
    echo '== bench lane: inference throughput (non-gating) =='
    python scripts/bench_inference.py || echo "bench lane failed (non-gating)"
}

case "$lane" in
    tier1) run_tier1 ;;
    fast)  run_fast ;;
    chaos) run_chaos ;;
    bench) run_bench ;;
    all)   run_tier1; run_fast ;;
    *)     echo "usage: scripts/ci.sh [tier1|fast|chaos|bench|all]" >&2; exit 2 ;;
esac
