"""Latency under load: open-loop traffic replay, single-process vs daemon.

Extends ``BENCH_inference.json`` with a ``traffic_replay`` section (and a
``drift_recovery`` section — see below). Where
``bench_inference.py`` measures peak rows/sec through a perfectly fed
scorer, this bench replays a seeded open-loop workload (Poisson
arrivals, mixed batch sizes — see :mod:`repro.serving.replay`) against

- ``single`` — call-per-request ``score_batch``, the pre-daemon serving
  primary: requests queue behind each other, every one pays the full
  per-call fixed cost;
- ``daemon`` — a :class:`~repro.serving.daemon.ServingDaemon` with the
  spec resident in a long-lived worker and shared-memory ring transport:
  concurrent arrivals are coalesced into fused scoring calls;
- ``striped`` (``striped_daemon`` workload only) — a
  :class:`~repro.serving.executor.StripedDaemonExecutor` splitting each
  large batch across both daemon workers with an in-order merge.

Reported per (workload, mode): p50/p95/p99/max latency **against the
scheduled arrival time** (queueing delay counts — the open-loop rule),
achieved rows/sec, and the daemon-vs-single speedup. Both modes replay
byte-identical traffic from the same seed.

The ``drift_recovery`` section replays the lifecycle drift scenario
(:mod:`repro.lifecycle.replay`): warm traffic, then a covariate-shifted
regime, through a :class:`~repro.lifecycle.manager.LifecycleManager`.
Reported: batches to drift detection, detection→hot-swap wall-clock
latency, and the live model's AUPRC on the shifted regime before drift,
at detection, and after the swap (the accuracy-recovery curve).

Each workload runs in its own subprocess with BLAS/OMP pools pinned to
one thread, matching ``bench_inference.py`` methodology. Non-gating: the
ci.sh ``bench`` lane tracks trends and warns on regression below the
floors in ``scripts/bench_baseline.json``.

Usage::

    PYTHONPATH=src python scripts/bench_replay.py [--out PATH] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Replay workloads: (rate_rps, n_requests, batch_mix, daemon_workers).
#: Rates deliberately oversubscribe a one-CPU host — latency under
#: saturation is the number this bench exists to record.
WORKLOADS = {
    # Many tiny requests at ~4x the single-process service capacity:
    # the per-call fixed-cost regime where micro-batching pays the most
    # and the call-per-request baseline visibly queues.
    "small_spray": dict(rate_rps=8000.0, n_requests=4000,
                        batch_mix=((32, 1.0),), daemon_workers=1),
    # Mixed sizes at ~2x capacity: closer to a real traffic mix, still
    # saturated enough that latency reflects queueing, not service time.
    "mixed_load": dict(rate_rps=2500.0, n_requests=1500,
                       batch_mix=((16, 0.5), (64, 0.35), (256, 0.15)),
                       daemon_workers=1),
    # Few huge requests against 2 daemon workers: the row-striping
    # regime. Replayed three ways — single, plain 2-worker daemon, and
    # StripedDaemonExecutor splitting each batch across both workers.
    # On a 1-CPU CI host the stripes time-slice one core and striping
    # is expected to LOSE to the plain daemon (recorded honestly, as
    # the sharding bench did in PR 5); with >=2 free cores the stripes
    # score concurrently and the merge is the only added cost.
    "striped_daemon": dict(rate_rps=400.0, n_requests=400,
                           batch_mix=((2048, 1.0),), daemon_workers=2,
                           striped=True),
}

#: --smoke shrinks every workload to a few-second sanity pass (CI lane).
SMOKE_SCALE = 0.2

POOL_ROWS = 4096

THREAD_ENV = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}


def _fit_tiny_model():
    """The bench_inference classifier_head model: tiny, fast, real."""
    from repro.core.config import TargADConfig
    from repro.core.model import TargAD

    rng = np.random.default_rng(0)
    n_features, m, k = 32, 3, 2
    X_unlabeled = np.vstack([
        rng.normal(size=(600, n_features)),
        rng.normal(3.0, 1.0, size=(60, n_features)),
    ])
    X_labeled = rng.normal(5.0, 1.0, size=(48, n_features))
    y_labeled = rng.integers(0, m, size=48)
    model = TargAD(TargADConfig(
        k=k, clf_hidden=(64, 32), clf_epochs=3, ae_epochs=5, random_state=0,
    ))
    model.fit(X_unlabeled, X_labeled, y_labeled)
    return model, n_features


def _measure(name: str, smoke: bool) -> dict:
    from repro.serving.daemon import ServingDaemon
    from repro.serving.replay import ReplaySpec, build_schedule, replay_daemon, replay_sync
    from repro.serving.sharding import build_scoring_spec

    params = WORKLOADS[name]
    n_requests = params["n_requests"]
    if smoke:
        n_requests = max(int(n_requests * SMOKE_SCALE), 50)
    spec = ReplaySpec(
        name=name, rate_rps=params["rate_rps"], n_requests=n_requests,
        batch_mix=tuple(tuple(e) for e in params["batch_mix"]), seed=7,
    )
    model, n_features = _fit_tiny_model()
    rng = np.random.default_rng(1)
    X_pool = rng.normal(size=(POOL_ROWS, n_features))
    schedule = build_schedule(spec, POOL_ROWS)

    # Warm the compiled plan, then replay single-process.
    model.score_batch(X_pool[:64], strategy="ed")
    single = replay_sync(spec, schedule, X_pool,
                         lambda X: model.score_batch(X, strategy="ed"))

    scoring_spec = build_scoring_spec(model, "ed")
    with ServingDaemon(scoring_spec,
                       n_workers=params["daemon_workers"]) as daemon:
        daemon.score(X_pool[:64])  # warm the worker's plan cache
        result = replay_daemon(spec, schedule, X_pool, daemon)

    extra = {}
    if params.get("striped"):
        from repro.serving.executor import StripedDaemonExecutor

        executor = StripedDaemonExecutor(
            lambda: build_scoring_spec(model, "ed"),
            n_workers=params["daemon_workers"], stripe_min_rows=512,
        )
        try:
            # A 1024-row warm batch stripes across both workers, so each
            # worker compiles its plan before the clock starts.
            executor.score(X_pool[:1024])
            striped = replay_daemon(spec, schedule, X_pool, executor)
        finally:
            executor.close()
        extra["striped"] = striped.to_dict()
        extra["striped_speedup_vs_single"] = round(
            striped.rows_per_sec / single.rows_per_sec, 2
        ) if single.rows_per_sec else 0.0
        extra["striped_speedup_vs_daemon"] = round(
            striped.rows_per_sec / result.rows_per_sec, 2
        ) if result.rows_per_sec else 0.0

    return {
        "workload": name,
        "rate_rps": spec.rate_rps,
        "n_requests": spec.n_requests,
        "batch_mix": [list(e) for e in spec.batch_mix],
        "daemon_workers": params["daemon_workers"],
        "single": single.to_dict(),
        "daemon": result.to_dict(),
        "daemon_speedup_vs_single": round(
            result.rows_per_sec / single.rows_per_sec, 2
        ) if single.rows_per_sec else 0.0,
        "daemon_p99_vs_single": round(
            single.percentile_ms(99) / max(result.percentile_ms(99), 1e-9), 2
        ),
        **extra,
    }


def _measure_drift(smoke: bool) -> dict:
    """Lifecycle drift scenario: detection + swap latency + recovery."""
    from repro.core.config import TargADConfig
    from repro.core.model import TargAD
    from repro.lifecycle import (
        DriftPolicy, LifecycleManager, drift_replay, make_split_oracle,
        shift_regime,
    )
    from repro.serving import ScoringPipeline

    rng = np.random.default_rng(3)
    n_features, m = 16, 2
    scale = SMOKE_SCALE if smoke else 1.0

    def population(n_normal, n_target, shuffle_seed):
        X = np.vstack([
            rng.normal(size=(n_normal, n_features)),
            rng.normal(4.0, 1.0, size=(n_target, n_features)),
        ])
        y = np.concatenate([
            np.zeros(n_normal, dtype=np.int64),
            np.ones(n_target, dtype=np.int64),
        ])
        order = np.random.default_rng(shuffle_seed).permutation(len(X))
        return X[order], y[order]

    n_unlabeled = max(int(800 * scale), 200)
    X_unlabeled, _ = population(n_unlabeled, n_unlabeled // 12, 0)
    X_labeled = rng.normal(4.0, 1.0, size=(32, n_features))
    y_labeled = rng.integers(0, m, size=32)
    X_val, y_val = population(max(int(240 * scale), 80), 24, 1)
    X_warm, _ = population(max(int(320 * scale), 120), 12, 2)

    model = TargAD(TargADConfig(
        k=2, clf_hidden=(32, 16), clf_epochs=5, ae_epochs=5, random_state=0,
    ))
    t0 = time.perf_counter()
    model.fit(X_unlabeled, X_labeled, y_labeled)
    fit_seconds = time.perf_counter() - t0

    pipe = ScoringPipeline(model, policy="f1", drift_threshold=0.3)
    pipe.calibrate(X_val, y_val, X_reference=X_unlabeled)

    X_new, y_new = population(max(int(480 * scale), 200), 48, 3)
    X_shifted = shift_regime(X_new, shift=3.0, seed=4)
    half = len(X_shifted) // 2
    oracle = make_split_oracle(X_shifted[:half], y_new[:half])
    manager = LifecycleManager(
        pipe, X_unlabeled, X_labeled, y_labeled, X_val, y_val,
        oracle=oracle,
        policy=DriftPolicy(confirm_checks=2, cooldown_batches=8,
                           label_budget=16, refit_epochs=3,
                           min_auprc_ratio=0.5),
        seed=0,
    )
    result = drift_replay(
        manager, X_warm, X_shifted[:half], X_shifted[half:], y_new[half:],
        batch_rows=48,
    )
    payload = result.to_dict()
    payload["fit_seconds"] = round(fit_seconds, 3)
    payload["generation"] = manager.pipeline.generation
    return payload


def _run_worker(name: str, smoke: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(THREAD_ENV)
    cmd = [sys.executable, __file__, "--worker", name]
    if smoke:
        cmd.append("--smoke")
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(
            f"replay worker {name!r} exited with {proc.returncode}"
        )
    return json.loads(proc.stdout)


def run(smoke: bool) -> dict:
    results = [_run_worker(name, smoke) for name in WORKLOADS]
    striped = [r["striped_speedup_vs_daemon"] for r in results
               if "striped_speedup_vs_daemon" in r]
    return {
        "pool_rows": POOL_ROWS,
        "smoke": smoke,
        "thread_env": dict(THREAD_ENV),
        "results": results,
        # Headline: best observed daemon-vs-single throughput under load.
        "daemon_speedup_best": max(
            r["daemon_speedup_vs_single"] for r in results
        ),
        # Striping vs the plain daemon on the large-batch workload
        # (expected < 1.0 on a 1-CPU host, > 1.0 with free cores).
        "striped_speedup_best": max(striped) if striped else None,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_inference.json",
                        help="BENCH json to extend with the traffic_replay section")
    parser.add_argument("--smoke", action="store_true",
                        help="shrunken few-second replay (CI smoke)")
    parser.add_argument("--worker",
                        choices=sorted(WORKLOADS) + ["drift_recovery"],
                        help="internal: measure one workload, print JSON")
    args = parser.parse_args()
    if args.worker == "drift_recovery":
        print(json.dumps(_measure_drift(args.smoke)))
        return
    if args.worker:
        print(json.dumps(_measure(args.worker, args.smoke)))
        return
    start = time.perf_counter()
    section = run(args.smoke)
    drift = _run_worker("drift_recovery", args.smoke)
    payload = {}
    if args.out.exists():
        payload = json.loads(args.out.read_text())
    payload["traffic_replay"] = section
    payload["drift_recovery"] = drift
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote traffic_replay + drift_recovery sections to {args.out} "
          f"({time.perf_counter() - start:.1f}s)")
    for row in section["results"]:
        for mode in ("single", "daemon", "striped"):
            d = row.get(mode)
            if d is None:
                continue
            print(f"  {row['workload']:>14}/{mode:<7} "
                  f"p50={d['latency_p50_ms']:>9.2f}ms "
                  f"p99={d['latency_p99_ms']:>9.2f}ms "
                  f"{d['rows_per_sec']:>12,.0f} rows/s")
        print(f"  {row['workload']:>14} daemon speedup "
              f"{row['daemon_speedup_vs_single']}x throughput, "
              f"{row['daemon_p99_vs_single']}x p99")
        if "striped_speedup_vs_daemon" in row:
            print(f"  {row['workload']:>14} striping "
                  f"{row['striped_speedup_vs_daemon']}x vs plain daemon, "
                  f"{row['striped_speedup_vs_single']}x vs single")
    print(f"  headline: daemon {section['daemon_speedup_best']}x vs "
          "single-process under load")
    if section.get("striped_speedup_best") is not None:
        print(f"  striping: {section['striped_speedup_best']}x vs plain "
              "daemon on the large-batch workload")
    dts = drift.get("detection_to_swap_seconds")
    print(f"  drift recovery: detected after {drift['batches_to_detection']} "
          f"drifted batch(es), detection->swap "
          + (f"{dts:.2f}s" if dts is not None else "n/a")
          + f", AUPRC {drift['auprc_before_drift']:.3f} -> "
          f"{drift['auprc_final']:.3f} "
          f"({'recovered' if drift['recovered'] else 'NOT recovered'})")


if __name__ == "__main__":
    main()
